//! §IV-D extension: edge-balanced optimistic dispatch (`EdgeCL`).
//!
//! The paper's "further improvements" sketch a variant that divides the
//! *edges* of the frontier evenly instead of the vertices, keeping the
//! same lock- and RMW-free dynamic load balancing. This module implements
//! it: at each level the barrier leader flattens the frontier into a
//! vertex list with exclusive prefix sums of degrees; workers then grab
//! *edge ranges* from a single shared racy cursor with plain loads and
//! stores.
//!
//! The same no-gap orbit argument as the centralized dispatcher applies
//! (see [`crate::centralized`]): the range length is a pure function of
//! the observed cursor, so ranges either coincide or are disjoint —
//! overlaps are replays (duplicate edge scans, benign), never gaps.
//!
//! Note: `EdgeCL` ignores [`crate::DedupMode::OwnerArray`] — frontier
//! entries lose their queue identity when flattened.

// lint:protocol racy — the edge cursor is published with plain stores;
// overlapping ranges are replays (duplicate scans), never gaps.

use crate::driver::{LevelEnv, Strategy};
use crate::frontier::{decode, FrontierQueue, EMPTY_SLOT};
use crate::state::RunState;
use crate::stats::ThreadStats;
use obfs_graph::VertexId;
use obfs_runtime::WorkerCtx;
use obfs_sync::flight;
use obfs_util::Xoshiro256StarStar;

/// The `EdgeCL` strategy.
pub struct EdgePartitioned;

impl Strategy for EdgePartitioned {
    fn serial_prepare(&self, env: &LevelEnv<'_, '_>) {
        let st = env.st;
        let qin = st.qin(env.parity);
        // SAFETY: barrier serial section — exclusive access.
        unsafe {
            let flat = st.flat_vertices.get_mut();
            let prefix = st.flat_prefix.get_mut();
            flat.clear();
            prefix.clear();
            let mut acc = 0u64;
            for k in 0..st.threads {
                let q = qin.queue(k);
                for i in 0..q.rear() {
                    let s = q.slot(i);
                    if s == EMPTY_SLOT {
                        continue; // defensive; queues are intact here
                    }
                    let v = decode(s);
                    flat.push(v);
                    prefix.push(acc);
                    acc += st.graph.degree(v) as u64;
                }
            }
            prefix.push(acc);
            st.edge_cursor.store(0);
        }
    }

    fn consume(
        &self,
        env: &LevelEnv<'_, '_>,
        _ctx: &WorkerCtx<'_>,
        tid: usize,
        out_rear: &mut usize,
        _rng: &mut Xoshiro256StarStar,
        ts: &mut ThreadStats,
    ) {
        let st = env.st;
        let out = st.qout(env.parity).queue(tid);
        // SAFETY: read-only between barriers.
        let flat = unsafe { st.flat_vertices.get() };
        // SAFETY: read-only between barriers, as above.
        let prefix = unsafe { st.flat_prefix.get() };
        consume_edge_ranges(st, flat, prefix, env.level, tid, out, out_rear, ts);
    }
}

// lint:region hot-path:edge-dispatch
/// Optimistically dispatch edge ranges of the flattened work list
/// `(flat, prefix)` via `st.edge_cursor` (plain load/store; duplicates
/// benign). Shared with the scale-free phase-2 stealing variant.
#[allow(clippy::too_many_arguments)]
pub(crate) fn consume_edge_ranges(
    st: &RunState<'_>,
    flat: &[VertexId],
    prefix: &[u64],
    level: u32,
    tid: usize,
    out: &FrontierQueue,
    out_rear: &mut usize,
    ts: &mut ThreadStats,
) {
    debug_assert_eq!(prefix.len(), flat.len() + 1);
    let total = *prefix.last().unwrap_or(&0);
    if total == 0 {
        return;
    }
    let next = level + 1;
    loop {
        if st.watchdog_tripped() {
            return; // leader sweep finishes the level
        }
        let fetch_timer = obfs_sync::metrics::timer();
        let c = st.edge_cursor.load() as u64;
        if c >= total {
            return;
        }
        // Pure function of c — the no-gap orbit invariant.
        let es = st.opts.segment.segment_len((total - c) as usize, st.threads) as u64;
        let end = (c + es).min(total);
        // racy-ok: optimistic cursor publish — a dragged-back cursor only replays scanned edges
        st.edge_cursor.store(end as usize);
        ts.segments_fetched += 1;
        obfs_sync::metrics::segment_fetch(fetch_timer);
        flight::record(flight::kind::SEGMENT_FETCH, level, c, end - c);

        // Map edge range [c, end) onto (vertex, adjacency slice) pieces.
        let mut vi = prefix.partition_point(|&x| x <= c) - 1;
        let mut e = c;
        while e < end {
            debug_assert!(vi < flat.len());
            let v_start = prefix[vi];
            let v_end = prefix[vi + 1];
            if v_end <= e {
                vi += 1;
                continue; // zero-degree entries / range boundary
            }
            let h = flat[vi];
            let lo = (e - v_start) as usize;
            let hi = (end.min(v_end) - v_start) as usize;
            let neigh = st.graph.neighbors(h);
            ts.edges_scanned += (hi - lo) as u64;
            if lo == 0 {
                // Count each frontier entry once, at its first edge.
                st.note_pop(h, level, ts);
            }
            if st.batch.is_some() {
                // Frontier bits are level-barrier-published, so every
                // piece of h's adjacency derives the same word.
                let fbits = st.frontier_bits(h, level);
                if fbits != 0 {
                    for &w in &neigh[lo..hi] {
                        st.try_discover_batch(w, h, fbits, next, out, out_rear, ts);
                    }
                }
            } else {
                for &w in &neigh[lo..hi] {
                    st.try_discover(w, h, next, tid, out, out_rear, ts);
                }
            }
            e = v_start + hi as u64;
            vi += 1;
        }
    }
}
// lint:endregion

#[cfg(test)]
mod tests {
    use crate::options::{Algorithm, BfsOptions, SegmentPolicy};
    use crate::serial::serial_bfs;
    use crate::run_bfs;
    use obfs_graph::gen;

    fn check(g: &obfs_graph::CsrGraph, src: u32, o: &BfsOptions) {
        let par = run_bfs(Algorithm::EdgeCl, g, src, o);
        let ser = serial_bfs(g, src);
        assert_eq!(par.levels, ser.levels, "EdgeCL vs serial (src={src})");
    }

    #[test]
    fn matches_serial_on_varied_graphs() {
        let o = BfsOptions { threads: 4, ..Default::default() };
        check(&gen::path(200), 0, &o);
        check(&gen::star(300), 5, &o);
        check(&gen::erdos_renyi(600, 4000, 3), 0, &o);
        check(&gen::barabasi_albert(500, 3, 1), 2, &o);
    }

    #[test]
    fn hub_edges_are_split_not_serialized() {
        // A star's hub level is one vertex with 499 edges; edge dispatch
        // must still cover every edge.
        let o = BfsOptions {
            threads: 8,
            segment: SegmentPolicy::Fixed(16),
            ..Default::default()
        };
        check(&gen::star(500), 0, &o);
    }

    #[test]
    fn single_thread() {
        let o = BfsOptions { threads: 1, ..Default::default() };
        check(&gen::cycle(64), 3, &o);
    }

    #[test]
    fn vertices_with_zero_out_degree_in_frontier() {
        // 0 -> {1, 2}; 1 and 2 have no out-edges: frontier entries of
        // degree zero must not wedge the range walker.
        let g = obfs_graph::CsrGraph::from_edges(3, &[(0, 1), (0, 2)]);
        let o = BfsOptions { threads: 3, ..Default::default() };
        check(&g, 0, &o);
    }

    #[test]
    fn edge_accounting_plausible() {
        let g = gen::erdos_renyi(400, 3000, 9);
        let o = BfsOptions { threads: 4, ..Default::default() };
        let r = run_bfs(Algorithm::EdgeCl, &g, 0, &o);
        let ser = serial_bfs(&g, 0);
        // Parallel edge scans >= serial scans (duplicates only add).
        assert!(r.stats.totals.edges_scanned >= ser.stats.totals.edges_scanned);
    }
}
