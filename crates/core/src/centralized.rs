//! Centralized-queue BFS: BFSC (global lock) and BFSCL (optimistic
//! lock-free), paper §IV-A.1 and §IV-A.2.
//!
//! Both dispatch *segments* of the queue array to threads. BFSC guards
//! the global cursor `⟨q, f⟩` with one lock. BFSCL keeps a global racy
//! queue pointer `q` and per-queue racy `front` cursors and updates them
//! with plain loads/stores; conflicting updates can move cursors
//! backwards, which only re-opens already-consumed (zeroed) segments.
//!
//! ## Why racy dispatch loses no vertices (the no-gap invariant)
//!
//! The segment length is a *pure function* of the observed front: two
//! threads that read the same `f` compute the same segment `[f, g(f))`
//! where `g(f) = f + s(r - f)`. Hence every value ever stored into
//! `front` lies on the deterministic orbit `f₀, g(f₀), g(g(f₀)), …`, and
//! segments either coincide exactly or are disjoint — partial overlap is
//! impossible. Within one segment, every slot is zeroed by exactly the
//! walker that read it live, and that walker explores it; co-walkers of
//! the same segment abort at the first slot they find already zeroed.
//! Therefore every slot is explored at least once, duplicates are
//! bounded by segment replays, and a 0 can never hide live work behind
//! it — exactly the argument sketched in the paper.
//!
//! **Do not make the segment length depend on anything but `(f, r, p)`**;
//! a time- or thread-dependent length breaks the orbit property and can
//! drop vertices.

// lint:protocol racy — the lock-free dispatcher publishes cursors with
// plain stores; the zero-on-read sentinel walk absorbs every stale view.

use crate::driver::{take_slot, LevelEnv, Strategy};
use crate::frontier::{decode, QueueSet, EMPTY_SLOT};
use crate::state::RunState;
use crate::stats::ThreadStats;
use obfs_runtime::WorkerCtx;
use obfs_sync::flight;
use obfs_util::Xoshiro256StarStar;

/// BFSC — centralized dispatch with a global lock.
pub struct CentralLocked;

impl Strategy for CentralLocked {
    fn serial_prepare(&self, env: &LevelEnv<'_, '_>) {
        let mut cur = env.st.central_lock.lock();
        cur.q = 0;
        cur.f = 0;
    }

    // lint:region baseline:central-locked
    fn consume(
        &self,
        env: &LevelEnv<'_, '_>,
        _ctx: &WorkerCtx<'_>,
        tid: usize,
        out_rear: &mut usize,
        _rng: &mut Xoshiro256StarStar,
        ts: &mut ThreadStats,
    ) {
        let st = env.st;
        let qin = st.qin(env.parity);
        let p = st.threads;
        let out = st.qout(env.parity).queue(tid);
        loop {
            if st.watchdog_tripped() {
                return; // leader sweep finishes the level
            }
            let fetch_timer = obfs_sync::metrics::timer();
            // --- critical section: advance ⟨q, f⟩ and cut a segment ---
            let (k, f0, end) = {
                let mut cur = st.central_lock.lock();
                ts.lock_acquisitions += 1;
                while cur.q < p && cur.f >= qin.queue(cur.q).rear() {
                    cur.q += 1;
                    cur.f = 0;
                }
                if cur.q >= p {
                    return; // level exhausted
                }
                let r = qin.queue(cur.q).rear();
                let s = st.opts.segment.segment_len(r - cur.f, p);
                let (k, f0) = (cur.q, cur.f);
                let end = (f0 + s).min(r);
                cur.f = end;
                (k, f0, end)
            };
            ts.segments_fetched += 1;
            obfs_sync::metrics::segment_fetch(fetch_timer);
            flight::record(flight::kind::SEGMENT_FETCH, env.level, k as u64, (end - f0) as u64);
            let queue = qin.queue(k);
            for i in f0..end {
                // Locked dispatch hands out disjoint ranges of live slots;
                // no clearing, no sentinel checks needed.
                let v = decode(queue.slot(i));
                if !st.pop_admit(v, k, ts) {
                    continue;
                }
                st.note_pop(v, env.level, ts);
                st.explore_vertex(v, env.level, tid, out, out_rear, ts);
            }
        }
    }
    // lint:endregion
}

/// BFSCL — centralized dispatch, optimistic lock-free.
pub struct CentralLockfree;

impl Strategy for CentralLockfree {
    fn serial_prepare(&self, env: &LevelEnv<'_, '_>) {
        env.st.pool_cursors[0].store(0);
    }

    fn consume(
        &self,
        env: &LevelEnv<'_, '_>,
        _ctx: &WorkerCtx<'_>,
        tid: usize,
        out_rear: &mut usize,
        _rng: &mut Xoshiro256StarStar,
        ts: &mut ThreadStats,
    ) {
        let st = env.st;
        let qin = st.qin(env.parity);
        let out = st.qout(env.parity).queue(tid);
        consume_pool_lockfree(st, qin, 0, (0, st.threads), env.level, tid, out_rear, out, ts);
    }
}

// lint:region hot-path:central-fetch
/// Shared lock-free pool consumer: drains queues `[range.0, range.1)`
/// using the racy cursor `st.pool_cursors[pool]`. Used by BFSCL (one pool
/// over all queues) and BFSDL (several pools).
///
/// Returns when the pool appears exhausted from this thread's view.
#[allow(clippy::too_many_arguments)]
pub(crate) fn consume_pool_lockfree(
    st: &RunState<'_>,
    qin: &QueueSet,
    pool: usize,
    range: (usize, usize),
    level: u32,
    out_queue_id: usize,
    out_rear: &mut usize,
    out: &crate::frontier::FrontierQueue,
    ts: &mut ThreadStats,
) {
    let cursor = &st.pool_cursors[pool];
    let (start, end_q) = range;
    let mut wd_retries = 0u64;
    loop {
        if st.watchdog_tripped() {
            return; // leader sweep finishes the level
        }
        let fetch_timer = obfs_sync::metrics::timer();
        let mut retry_burst = 0u64;
        // --- optimistic fetch (paper §IV-A.2) ---
        let mut k = cursor.load().clamp(start, end_q);
        let (k, f0, s) = loop {
            // Scan for the leftmost queue with unconsumed entries.
            let queue = loop {
                if k >= end_q {
                    return; // pool exhausted (from our view)
                }
                let q = qin.queue(k);
                if q.front() < q.rear() {
                    break q;
                }
                k += 1;
            };
            // Re-read the front (another thread may have raced us here).
            let f = queue.front();
            let r = queue.rear();
            if f >= r {
                ts.fetch_retries += 1;
                retry_burst += 1;
                flight::record(flight::kind::FETCH_RETRY, level, k as u64, 0);
                if st.watchdog_retry(&mut wd_retries) {
                    return; // retry budget exhausted: degrade the level
                }
                continue;
            }
            // Segment length must be the pure function of (f, r, p) — see
            // the module-level no-gap invariant.
            let s = st.opts.segment.segment_len(r - f, st.threads);
            // Publish: advance the shared pointers with plain stores.
            // Racing threads may drag them backwards; that only re-opens
            // zeroed segments.
            // racy-ok: optimistic cursor publish — stale views re-open only zeroed segments
            cursor.store(k);
            queue.set_front(f + s);
            break (k, f, s);
        };
        ts.segments_fetched += 1;
        obfs_sync::metrics::segment_fetch(fetch_timer);
        obfs_sync::metrics::fetch_retry_burst(retry_burst);
        flight::record(flight::kind::SEGMENT_FETCH, level, k as u64, s as u64);
        // --- walk the segment under the zero-on-read protocol ---
        let queue = qin.queue(k);
        let live_end = queue.rear(); // for stale accounting only
        for i in f0..f0 + s {
            match take_slot(queue, i) {
                Some(v) => {
                    if !st.pop_admit(v, k, ts) {
                        continue;
                    }
                    st.note_pop(v, level, ts);
                    st.explore_vertex(v, level, out_queue_id, out, out_rear, ts);
                }
                None => {
                    if i < live_end {
                        // Cleared mid-queue: segment replayed or co-walked.
                        ts.stale_slot_aborts += 1;
                        flight::record(flight::kind::STALE_ABORT, level, k as u64, i as u64);
                    }
                    break;
                }
            }
        }
        debug_assert_ne!(EMPTY_SLOT, 1);
    }
}
// lint:endregion

#[cfg(test)]
mod tests {
    use crate::options::{Algorithm, BfsOptions, SegmentPolicy};
    use crate::serial::serial_bfs;
    use crate::{run_bfs, UNVISITED};
    use obfs_graph::gen;

    fn check(algo: Algorithm, g: &obfs_graph::CsrGraph, src: u32, opts: &BfsOptions) {
        let par = run_bfs(algo, g, src, opts);
        let ser = serial_bfs(g, src);
        assert_eq!(par.levels, ser.levels, "{algo} disagrees with serial (src={src})");
    }

    #[test]
    fn bfsc_matches_serial_on_varied_graphs() {
        let opts = BfsOptions { threads: 4, ..Default::default() };
        check(Algorithm::Bfsc, &gen::path(200), 0, &opts);
        check(Algorithm::Bfsc, &gen::star(100), 3, &opts);
        check(Algorithm::Bfsc, &gen::erdos_renyi(500, 2500, 1), 0, &opts);
        check(Algorithm::Bfsc, &gen::binary_tree(127), 0, &opts);
    }

    #[test]
    fn bfscl_matches_serial_on_varied_graphs() {
        let opts = BfsOptions { threads: 4, ..Default::default() };
        check(Algorithm::Bfscl, &gen::path(200), 7, &opts);
        check(Algorithm::Bfscl, &gen::complete(60), 0, &opts);
        check(Algorithm::Bfscl, &gen::erdos_renyi(500, 2500, 2), 9, &opts);
        check(Algorithm::Bfscl, &gen::barabasi_albert(400, 3, 5), 0, &opts);
    }

    #[test]
    fn bfscl_tiny_segments_force_contention() {
        // Segment length 1 maximizes cursor races.
        let opts = BfsOptions {
            threads: 8,
            segment: SegmentPolicy::Fixed(1),
            ..Default::default()
        };
        for seed in 0..5 {
            let g = gen::erdos_renyi(300, 1800, seed);
            check(Algorithm::Bfscl, &g, (seed % 300) as u32, &opts);
        }
    }

    #[test]
    fn bfsc_single_thread_equals_serial() {
        let opts = BfsOptions { threads: 1, ..Default::default() };
        let g = gen::cycle(50);
        check(Algorithm::Bfsc, &g, 10, &opts);
        check(Algorithm::Bfscl, &g, 10, &opts);
    }

    #[test]
    fn disconnected_graph_handled() {
        let g = obfs_graph::CsrGraph::from_edges(10, &[(0, 1), (1, 2), (5, 6)]);
        let opts = BfsOptions { threads: 3, ..Default::default() };
        let r = run_bfs(Algorithm::Bfscl, &g, 0, &opts);
        assert_eq!(r.levels[2], 2);
        assert_eq!(r.levels[5], UNVISITED);
        assert_eq!(r.reached(), 3);
    }

    /// Chaos-deferred cursor stores make workers observe mixed `⟨f, r⟩`
    /// views of the centralized dispatcher; the `f' >= r'` sanity check
    /// must absorb every one as a counted retry while the traversal
    /// stays exact — the centralized counterpart of the work-steal
    /// snapshot adversary.
    #[cfg(feature = "chaos")]
    #[test]
    fn chaos_stale_cursors_hit_fetch_sanity_check() {
        let mut retries = 0u64;
        for seed in 0..6u64 {
            let g = gen::erdos_renyi(300, 2100, seed);
            let opts = BfsOptions {
                threads: 4,
                segment: SegmentPolicy::Fixed(1),
                chaos: Some(obfs_sync::ChaosConfig::aggressive(seed)),
                ..Default::default()
            };
            let r = run_bfs(Algorithm::Bfscl, &g, 0, &opts);
            let ser = serial_bfs(&g, 0);
            assert_eq!(r.levels, ser.levels, "seed {seed}");
            retries += r.stats.totals.fetch_retries;
        }
        assert!(retries > 0, "stale cursors never reached the sanity check");
    }

    #[test]
    fn stats_are_sane() {
        let g = gen::erdos_renyi(400, 3200, 3);
        let opts = BfsOptions { threads: 4, ..Default::default() };
        let r = run_bfs(Algorithm::Bfscl, &g, 0, &opts);
        let reached = r.reached() as u64;
        assert!(r.stats.totals.vertices_explored >= reached - 1);
        assert!(r.stats.totals.segments_fetched > 0);
        assert_eq!(r.stats.per_thread.len(), 4);
        // Locked variant must report lock traffic, lock-free must not.
        let rl = run_bfs(Algorithm::Bfsc, &g, 0, &opts);
        assert!(rl.stats.totals.lock_acquisitions > 0);
        assert_eq!(r.stats.totals.lock_acquisitions, 0);
    }
}
