//! Runtime kernel dispatch: probe at startup, pick the fastest bitmap
//! scan backend, and report which one ran.
//!
//! Modeled on the `fast_chacha` pattern (SNIPPETS.md): the library ships
//! more than one implementation of its hot inner loop, detects the
//! fastest available one at startup, and every report says which backend
//! actually ran. Here the hot loop is the bitmap scan shared by the
//! bottom-up kernel and the prefix-sum frontier compaction
//! ([`crate::scan`]): a word-at-a-time walk (skip zero words, iterate
//! set bits by `trailing_zeros`) versus a branchy per-bit scalar
//! fallback. Both produce identical results in identical order — the
//! probe only ever changes speed, never answers — so recording the
//! choice in [`crate::RunStats::kernel_backend`] and the schema-v4
//! `BENCH_*.json` reports keeps benchmark numbers attributable.
//!
//! The probe runs once per process (cached), on a synthetic
//! mixed-density bitmap with a fixed seed, so every run of one process
//! — and every level of one recording — reports the same identity.

use crate::frontier::FrontierBitmap;
use crate::scan;
use std::sync::OnceLock;

/// The bitmap scan implementations the probe chooses between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanBackend {
    /// Word-at-a-time: skip all-zero words, walk set bits with
    /// `trailing_zeros` (the usual winner).
    #[default]
    Wordwise,
    /// Branchy per-bit scalar walk (the portable fallback, and the
    /// ablation baseline).
    Scalar,
}

impl ScanBackend {
    /// Stable label used by the bench JSON schema and the CLI.
    pub fn label(&self) -> &'static str {
        match self {
            ScanBackend::Wordwise => "wordwise",
            ScanBackend::Scalar => "scalar",
        }
    }

    /// Parse a [`ScanBackend::label`].
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "wordwise" => Some(ScanBackend::Wordwise),
            "scalar" => Some(ScanBackend::Scalar),
            _ => None,
        }
    }

    /// Flight-recorder payload code (`b` of a `COMPACT` event).
    pub fn code(&self) -> u64 {
        match self {
            ScanBackend::Wordwise => 0,
            ScanBackend::Scalar => 1,
        }
    }
}

impl std::fmt::Display for ScanBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How a run selects its scan backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelChoice {
    /// Probe once per process and use the fastest backend.
    #[default]
    Auto,
    /// Pin a backend (tests, ablations, reproducing a recorded run).
    Forced(ScanBackend),
}

impl KernelChoice {
    /// The backend this choice resolves to ([`probe`] for `Auto`).
    pub fn resolve(&self) -> ScanBackend {
        match self {
            KernelChoice::Auto => probe(),
            KernelChoice::Forced(b) => *b,
        }
    }
}

/// Time one backend over the probe bitmap: a popcount pass plus an
/// enumeration pass, the two operations the hot paths issue.
fn time_backend(backend: ScanBackend, bm: &FrontierBitmap, reps: u32) -> std::time::Duration {
    let words = bm.word_count();
    let mut best = std::time::Duration::MAX;
    for _ in 0..reps {
        let t = std::time::Instant::now();
        let mut acc = 0u64;
        acc += scan::popcount_words(backend, bm, 0, words);
        scan::for_each_set(backend, bm, 0, words, |v| acc ^= v as u64);
        let dt = t.elapsed();
        std::hint::black_box(acc);
        best = best.min(dt);
    }
    best
}

/// Probe both backends on a synthetic mixed-density bitmap and return
/// the faster one. Cached per process, so every run in one process (and
/// every level of one recording) reports the same identity; ties go to
/// [`ScanBackend::Wordwise`].
pub fn probe() -> ScanBackend {
    static CHOSEN: OnceLock<ScanBackend> = OnceLock::new();
    *CHOSEN.get_or_init(|| {
        // 4096 words = 128Ki vertices: big enough to time, small enough
        // to stay in cache. Fixed seed — the probe input never varies.
        let bm = FrontierBitmap::new(4096 * crate::frontier::BITMAP_WORD_BITS);
        let mut rng = obfs_util::Xoshiro256StarStar::for_stream(0xD15_7A7C4, 0);
        for wi in 0..bm.word_count() {
            // Mixed density: runs of empty words (the wordwise skip
            // case), sparse words, and dense words — the profile of real
            // frontiers across a traversal.
            let w = match wi % 4 {
                0 => 0,
                1 => (rng.next_u64() & rng.next_u64() & rng.next_u64()) as u32,
                _ => rng.next_u64() as u32,
            };
            bm.set_word(wi, w);
        }
        let ww = time_backend(ScanBackend::Wordwise, &bm, 5);
        let sc = time_backend(ScanBackend::Scalar, &bm, 5);
        if sc < ww {
            ScanBackend::Scalar
        } else {
            ScanBackend::Wordwise
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for b in [ScanBackend::Wordwise, ScanBackend::Scalar] {
            assert_eq!(ScanBackend::from_label(b.label()), Some(b));
            assert_eq!(format!("{b}"), b.label());
        }
        assert_eq!(ScanBackend::from_label("simd9000"), None);
        assert_ne!(ScanBackend::Wordwise.code(), ScanBackend::Scalar.code());
    }

    #[test]
    fn probe_is_stable_within_a_process() {
        let first = probe();
        for _ in 0..10 {
            assert_eq!(probe(), first, "probe must cache its choice");
        }
        assert_eq!(KernelChoice::Auto.resolve(), first);
        assert_eq!(
            KernelChoice::Forced(ScanBackend::Scalar).resolve(),
            ScanBackend::Scalar
        );
    }
}
