//! Per-thread mutable slots without synchronization.
//!
//! BFS workers accumulate private state (counters, hub lists, local
//! cursors) that only the owning thread touches during a run and that the
//! coordinator reads after all workers have finished. [`PerThread`]
//! expresses that discipline: interior mutability indexed by thread id,
//! cache-padded to avoid false sharing.

use obfs_sync::CachePadded;
use std::cell::UnsafeCell;

/// `threads` independently owned `T` slots.
pub struct PerThread<T> {
    slots: Box<[CachePadded<UnsafeCell<T>>]>,
}

// SAFETY: slots are only accessed mutably through `get_mut(tid)` whose
// contract requires exclusive use per tid; the type is as thread-safe as
// sending `T` itself.
unsafe impl<T: Send> Sync for PerThread<T> {}
// SAFETY: moving the container moves the owned `T`s — same bound.
unsafe impl<T: Send> Send for PerThread<T> {}

impl<T> PerThread<T> {
    /// One slot per thread, built with `init(tid)`.
    pub fn new(threads: usize, mut init: impl FnMut(usize) -> T) -> Self {
        let slots = (0..threads)
            .map(|t| CachePadded::new(UnsafeCell::new(init(t))))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self { slots }
    }

    /// Number of slots (= worker count).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when there are no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Mutable access to thread `tid`'s slot.
    ///
    /// # Safety
    /// Only thread `tid` may call this while a parallel region is active,
    /// and it must not create two live references to the same slot.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn get_mut(&self, tid: usize) -> &mut T {
        &mut *self.slots[tid].get()
    }

    /// Shared read of thread `tid`'s slot.
    ///
    /// # Safety
    /// No `&mut` to the same slot may be live (i.e. call only outside
    /// parallel regions, or for a tid that is quiescent).
    #[inline]
    pub unsafe fn get(&self, tid: usize) -> &T {
        &*self.slots[tid].get()
    }

    /// Exclusive iteration once all workers are done (requires `&mut`,
    /// so the borrow checker enforces quiescence).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        // SAFETY: `&mut self` proves no worker holds a slot reference.
        self.slots.iter_mut().map(|c| unsafe { &mut *c.get() })
    }

    /// Consume into the inner values.
    pub fn into_values(self) -> Vec<T> {
        self.slots
            .into_vec()
            .into_iter()
            .map(|c| c.into_inner().into_inner())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn init_per_slot() {
        let pt = PerThread::new(4, |t| t * 10);
        assert_eq!(pt.len(), 4);
        for t in 0..4 {
            // SAFETY: single-threaded test, no concurrent writers.
            assert_eq!(unsafe { *pt.get(t) }, t * 10);
        }
    }

    #[test]
    fn concurrent_disjoint_mutation() {
        let pt = Arc::new(PerThread::new(8, |_| 0u64));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let pt = Arc::clone(&pt);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        // SAFETY: each thread touches only its own slot.
                        unsafe {
                            *pt.get_mut(t) += 1;
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let pt = Arc::try_unwrap(pt).ok().unwrap();
        for v in pt.into_values() {
            assert_eq!(v, 10_000);
        }
    }

    #[test]
    fn iter_mut_sees_all() {
        let mut pt = PerThread::new(3, |t| t as u32);
        for v in pt.iter_mut() {
            *v += 100;
        }
        assert_eq!(pt.into_values(), vec![100, 101, 102]);
    }
}
