//! Algorithm selection and tuning knobs.

use obfs_runtime::Topology;
use obfs_sync::{CancelToken, ChaosConfig, Clock};
use std::time::Duration;

/// The BFS algorithms of the paper (Table II) plus the §IV-D extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// `sbfs`: serial queue-based BFS.
    Serial,
    /// `BFSC`: centralized segment dispatch guarded by a global lock.
    Bfsc,
    /// `BFSCL`: centralized dispatch, optimistic lock-free.
    Bfscl,
    /// `BFSDL`: decentralized — `j` queue pools, optimistic lock-free.
    Bfsdl,
    /// `BFSW`: distributed randomized work-stealing with per-victim locks.
    Bfsw,
    /// `BFSWL`: work-stealing, optimistic lock-free.
    Bfswl,
    /// `BFSWS`: two-phase scale-free work-stealing with locks.
    Bfsws,
    /// `BFSWSL`: two-phase scale-free work-stealing, lock-free.
    Bfswsl,
    /// `EdgeCL` (§IV-D "further improvements"): edge-balanced optimistic
    /// centralized dispatch — segments are edge ranges, not vertex ranges.
    EdgeCl,
}

impl Algorithm {
    /// All parallel algorithms plus the serial baseline, in the order used
    /// by the paper's tables.
    pub const ALL: [Algorithm; 9] = [
        Algorithm::Serial,
        Algorithm::Bfsc,
        Algorithm::Bfscl,
        Algorithm::Bfsdl,
        Algorithm::Bfsw,
        Algorithm::Bfswl,
        Algorithm::Bfsws,
        Algorithm::Bfswsl,
        Algorithm::EdgeCl,
    ];

    /// Paper acronym.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Serial => "sbfs",
            Algorithm::Bfsc => "BFS_C",
            Algorithm::Bfscl => "BFS_CL",
            Algorithm::Bfsdl => "BFS_DL",
            Algorithm::Bfsw => "BFS_W",
            Algorithm::Bfswl => "BFS_WL",
            Algorithm::Bfsws => "BFS_WS",
            Algorithm::Bfswsl => "BFS_WSL",
            Algorithm::EdgeCl => "BFS_ECL",
        }
    }

    /// Parse a paper acronym (case-insensitive, underscores optional).
    pub fn from_name(s: &str) -> Option<Self> {
        let norm: String = s.chars().filter(|c| *c != '_').collect::<String>().to_ascii_uppercase();
        Self::ALL.into_iter().find(|a| {
            a.name().chars().filter(|c| *c != '_').collect::<String>().to_ascii_uppercase() == norm
        })
    }

    /// True for the variants that take no lock and no atomic RMW on the
    /// shared queue state.
    pub fn is_lockfree(&self) -> bool {
        matches!(
            self,
            Algorithm::Bfscl
                | Algorithm::Bfsdl
                | Algorithm::Bfswl
                | Algorithm::Bfswsl
                | Algorithm::EdgeCl
        )
    }

    /// True for the work-stealing family.
    pub fn is_work_stealing(&self) -> bool {
        matches!(
            self,
            Algorithm::Bfsw | Algorithm::Bfswl | Algorithm::Bfsws | Algorithm::Bfswsl
        )
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Duplicate-exploration suppression (§IV-D "further improvements").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DedupMode {
    /// The paper's evaluated configuration: duplicates tolerated.
    #[default]
    None,
    /// Owner-array suppression: pushes record the destination queue id in
    /// a shared array via arbitrary-concurrent-write (still no locks, no
    /// RMW); pops skip vertices whose recorded owner is a different queue.
    OwnerArray,
}

/// How segment sizes are chosen by the centralized dispatchers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentPolicy {
    /// Adaptive (the paper's choice): `s = clamp(remaining/(div*p), 1, max)`
    /// recomputed at every dispatch.
    Adaptive {
        /// Denominator factor: `s = remaining / (div * p)`.
        div: usize,
        /// Upper clamp on the segment length.
        max: usize,
    },
    /// Fixed segment length (ablation).
    Fixed(usize),
}

impl Default for SegmentPolicy {
    fn default() -> Self {
        SegmentPolicy::Adaptive { div: 2, max: 4096 }
    }
}

impl SegmentPolicy {
    /// Segment length for a dispatch given the remaining entries in the
    /// current queue and the worker count.
    #[inline]
    pub fn segment_len(&self, remaining: usize, threads: usize) -> usize {
        match *self {
            SegmentPolicy::Adaptive { div, max } => {
                (remaining / (div * threads).max(1)).clamp(1, max.max(1))
            }
            SegmentPolicy::Fixed(s) => s.max(1),
        }
    }
}

/// Traversal direction of one BFS level (direction-optimizing hybrid).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Direction {
    /// Parent-to-child frontier expansion (the paper's algorithms).
    #[default]
    TopDown,
    /// Child-to-parent frontier probing: each unvisited vertex scans its
    /// in-edges for a parent at the current level (plain idempotent
    /// stores, no atomics — the optimistic memory model carries over).
    BottomUp,
}

impl Direction {
    /// Short stable label ("td" / "bu") used by the bench JSON schema.
    pub fn label(&self) -> &'static str {
        match self {
            Direction::TopDown => "td",
            Direction::BottomUp => "bu",
        }
    }
}

/// Override for the hybrid direction heuristic (testing / ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForcedDirection {
    /// Every level runs top-down (hybrid plumbing active, switch never
    /// fires — isolates the bitmap/telemetry overhead).
    AlwaysTopDown,
    /// Every level after the source seed runs bottom-up.
    AlwaysBottomUp,
}

/// Direction-optimizing hybrid configuration (Beamer-style α/β switch
/// heuristic over the live frontier-density estimates of the per-level
/// driver). `None` in [`BfsOptions::hybrid`] keeps the paper's pure
/// top-down behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HybridPolicy {
    /// Switch to bottom-up when the frontier's out-edge volume exceeds
    /// `unexplored_edges / alpha` (Beamer's published α = 14).
    pub alpha: u64,
    /// Switch back to top-down when the frontier shrinks below
    /// `n / beta` (Beamer's published β = 24).
    pub beta: u64,
    /// Force a fixed direction instead of the heuristic (tests /
    /// ablations); `None` runs the α/β rule.
    pub force: Option<ForcedDirection>,
}

impl Default for HybridPolicy {
    fn default() -> Self {
        Self { alpha: 14, beta: 24, force: None }
    }
}

impl HybridPolicy {
    /// The heuristic with custom switch constants.
    pub fn with_constants(alpha: u64, beta: u64) -> Self {
        Self { alpha: alpha.max(1), beta: beta.max(1), force: None }
    }

    /// A policy pinned to one direction.
    pub fn forced(dir: ForcedDirection) -> Self {
        Self { force: Some(dir), ..Self::default() }
    }

    /// The α/β switch rule, in one place so the driver and the tests
    /// replaying recorded series agree exactly: given the direction of
    /// the finished level, the next frontier's vertex count `nf` and
    /// out-edge volume `mf`, the remaining unexplored edge volume `mu`,
    /// and the vertex count `n`, decide the next level's direction.
    pub fn decide(&self, was: Direction, nf: u64, mf: u64, mu: u64, n: u64) -> Direction {
        match self.force {
            Some(ForcedDirection::AlwaysTopDown) => Direction::TopDown,
            Some(ForcedDirection::AlwaysBottomUp) => Direction::BottomUp,
            None => {
                let go_bottom_up = if was == Direction::BottomUp {
                    nf >= n / self.beta.max(1) // stay until the frontier shrinks
                } else {
                    mf > mu / self.alpha.max(1)
                };
                if go_bottom_up {
                    Direction::BottomUp
                } else {
                    Direction::TopDown
                }
            }
        }
    }
}

/// Prefix-sum frontier compaction configuration (see [`crate::scan`]).
/// `None` in [`BfsOptions::compaction`] keeps every level on the paper's
/// queue-segment dispatch.
///
/// The decision reuses the inputs the level-end serial section already
/// computes for the hybrid α/β rule: the next frontier's vertex count
/// `nf` (`produced`) against the graph's vertex count `n`. A level whose
/// frontier holds at least `n / density_div` vertices is dense enough
/// that dispatch overhead and duplicate explorations dominate, so the
/// driver materializes that frontier by parallel prefix sum instead.
/// Compaction applies only to top-down levels — a bottom-up level has no
/// queue dispatch to replace — so it composes with the hybrid switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Compact a (top-down) level when its frontier holds at least
    /// `n / density_div` vertices.
    pub density_div: u64,
    /// Force compaction on/off for every eligible level instead of the
    /// density rule (tests / ablations); `None` runs the rule.
    pub force: Option<bool>,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        Self { density_div: 16, force: None }
    }
}

impl CompactionPolicy {
    /// A policy compacting every eligible (top-down, non-empty) level.
    pub fn forced_on() -> Self {
        Self { force: Some(true), ..Self::default() }
    }

    /// A policy that never compacts (hybrid-style plumbing active,
    /// decision always negative — isolates the bookkeeping overhead).
    pub fn forced_off() -> Self {
        Self { force: Some(false), ..Self::default() }
    }

    /// The density rule, in one place so the driver and tests replaying
    /// recorded series agree exactly: given the next frontier's vertex
    /// count `nf` and the graph's vertex count `n`, decide whether the
    /// next (top-down) level runs compacted. A zero `nf` never compacts
    /// (the run is about to end).
    pub fn decide(&self, nf: u64, n: u64) -> bool {
        if nf == 0 {
            return false;
        }
        match self.force {
            Some(f) => f,
            None => nf >= n / self.density_div.max(1),
        }
    }
}

/// Per-level watchdog limits for graceful degradation (DESIGN.md §7).
///
/// The optimistic dispatchers recover from racy corruption by retrying;
/// a watchdog bounds how long a level may spend retrying before the
/// barrier leader finishes the level with a serial sweep. Each tripped
/// level is counted in [`crate::RunStats::degraded_levels`]; the
/// traversal stays correct either way (the sweep re-explores whatever
/// frontier entries the parallel phase left behind, and duplicate
/// exploration is idempotent within a level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WatchdogPolicy {
    /// Wall-clock budget per level. Workers poll it at dispatch
    /// granularity (segment fetches, steal attempts, pool probes).
    /// `Some(Duration::ZERO)` degrades every level — a correct, fully
    /// serial run useful for testing the fallback path.
    pub level_deadline: Option<Duration>,
    /// Per-call bound on consecutive dispatch retries (fetch retries,
    /// steal attempts, pool probes) before the level is declared
    /// degraded. Tighter than the paper's `c·p·log p` give-up budget:
    /// tripping it ends the whole level, not just one thread's search.
    pub max_fetch_retries: Option<u64>,
}

impl WatchdogPolicy {
    /// A deadline-only policy.
    pub fn deadline(d: Duration) -> Self {
        Self { level_deadline: Some(d), max_fetch_retries: None }
    }
}

/// Tuning options shared by all algorithms. `Default` mirrors the paper's
/// configuration on a generic machine.
#[derive(Debug, Clone)]
pub struct BfsOptions {
    /// Worker threads `p`.
    pub threads: usize,
    /// Segment sizing for the centralized/decentralized dispatchers.
    pub segment: SegmentPolicy,
    /// `c` in the `c·p·log p` steal/pool-search retry budgets (paper
    /// §IV-A3, §IV-B1; `c > 1`).
    pub retry_c: usize,
    /// Minimum victim segment length worth stealing (steals of shorter
    /// segments are counted as "segment too small" failures).
    pub steal_min: usize,
    /// Degree above which a vertex is treated as a hub by the scale-free
    /// variants; `None` derives `max(64, 8 * avg_degree)` from the graph.
    pub hub_threshold: Option<usize>,
    /// Pool count `j ∈ [1, p]` for `BFSDL`.
    pub pools: usize,
    /// Duplicate suppression mode.
    pub dedup: DedupMode,
    /// Record a BFS-tree parent per vertex (arbitrary concurrent write).
    pub record_parents: bool,
    /// Scale-free variants: use optimistic edge-segment stealing in the
    /// hub phase instead of static per-thread chunks (the alternative the
    /// paper tried and found usually slower).
    pub phase2_steal: bool,
    /// Socket layout for NUMA-aware victim selection (§IV-C). `None`
    /// means uniform random victims.
    pub topology: Option<Topology>,
    /// Seed for victim selection and pool choice randomness.
    pub seed: u64,
    /// Record per-level frontier sizes, durations and merged counter
    /// deltas into [`crate::RunStats::level_stats`] (leader-side,
    /// near-zero cost).
    pub collect_level_stats: bool,
    /// Record per-worker latency histograms (segment-fetch, steal
    /// attempt, sanity-check retries per fetch, barrier wait) into
    /// [`crate::RunStats::hists`]. Runtime switch (no cargo feature
    /// needed); when off the only residue is a disarmed thread-local
    /// flag check at dispatch granularity — see `obfs_sync::metrics`.
    pub collect_histograms: bool,
    /// Install a flight recorder per worker with this many event slots
    /// (see `obfs_sync::flight`); the drained rings land in
    /// [`crate::RunStats::flight`]. Only effective on builds with the
    /// `trace` feature — without it the option is carried but the run
    /// records nothing and `flight` stays `None`.
    pub flight_recorder: Option<usize>,
    /// Deterministic fault-injection plan installed per worker (stream =
    /// thread id). Only honoured when the crate is built with the `chaos`
    /// feature; without it the plan is carried but never activates.
    pub chaos: Option<ChaosConfig>,
    /// Per-level watchdog; `None` (default) disables all polling.
    pub watchdog: Option<WatchdogPolicy>,
    /// Direction-optimizing hybrid: `Some` lets the per-level driver run
    /// dense levels bottom-up (BFSCL/BFSWSL and every other driver-based
    /// variant); `None` (default) keeps the paper's pure top-down runs.
    pub hybrid: Option<HybridPolicy>,
    /// Prefix-sum frontier compaction: `Some` lets the per-level driver
    /// materialize dense top-down frontiers by parallel prefix sum and
    /// consume them with a static partition instead of queue-segment
    /// dispatch; `None` (default) keeps the paper's dispatchers on every
    /// level. Composes with [`BfsOptions::hybrid`]; ignored by batched
    /// multi-source runs (their discovery path is already bit-parallel).
    pub compaction: Option<CompactionPolicy>,
    /// Scan-kernel selection for the bottom-up and compaction bitmap
    /// walks; the default probes once per process and picks the fastest
    /// backend (see [`crate::dispatch`]).
    pub kernel: crate::dispatch::KernelChoice,
    /// Time source for watchdog and cancellation deadlines. The default
    /// wall clock is right for production; tests inject
    /// [`Clock::manual`] so deadline branches replay deterministically.
    pub clock: Clock,
    /// Cooperative cancellation token. `None` (default) costs the run
    /// nothing; `Some` is polled at the same dispatch granularity as the
    /// watchdog and ends the run with a partial result
    /// ([`crate::Outcome::Cancelled`] / `DeadlineExceeded`).
    pub cancel: Option<CancelToken>,
    /// Live run telemetry (`obfs_run_*` gauges/counters, DESIGN.md
    /// §13): the barrier leader updates level/frontier/direction in its
    /// serial sections and workers flush per-level edge aggregates.
    /// `None` (default) costs the run nothing — the worker hook is a
    /// thread-local boolean check that is never installed.
    pub telemetry: Option<std::sync::Arc<obfs_telemetry::RunTelemetry>>,
}

impl Default for BfsOptions {
    fn default() -> Self {
        Self {
            threads: 4,
            segment: SegmentPolicy::default(),
            retry_c: 2,
            steal_min: 4,
            hub_threshold: None,
            pools: 1,
            dedup: DedupMode::None,
            record_parents: false,
            phase2_steal: false,
            topology: None,
            seed: 0x0BF5,
            collect_level_stats: false,
            collect_histograms: false,
            flight_recorder: None,
            chaos: None,
            watchdog: None,
            hybrid: None,
            compaction: None,
            kernel: crate::dispatch::KernelChoice::default(),
            clock: Clock::default(),
            cancel: None,
            telemetry: None,
        }
    }
}

impl BfsOptions {
    /// Validate and clamp derived fields against a concrete graph.
    pub fn resolved_hub_threshold(&self, graph: &obfs_graph::CsrGraph) -> usize {
        self.hub_threshold.unwrap_or_else(|| {
            let n = graph.num_vertices().max(1);
            let avg = (graph.num_edges() as usize / n).max(1);
            (8 * avg).max(64)
        })
    }

    /// Steal / pool-search retry budget for `k` choices.
    pub fn retry_budget(&self, k: usize) -> usize {
        obfs_util::retry_budget(self.retry_c.max(2), k, 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for a in Algorithm::ALL {
            assert_eq!(Algorithm::from_name(a.name()), Some(a), "{a}");
        }
        assert_eq!(Algorithm::from_name("bfswsl"), Some(Algorithm::Bfswsl));
        assert_eq!(Algorithm::from_name("BFS_CL"), Some(Algorithm::Bfscl));
        assert_eq!(Algorithm::from_name("nope"), None);
    }

    #[test]
    fn lockfree_classification() {
        assert!(Algorithm::Bfscl.is_lockfree());
        assert!(Algorithm::Bfswsl.is_lockfree());
        assert!(!Algorithm::Bfsc.is_lockfree());
        assert!(!Algorithm::Bfsw.is_lockfree());
        assert!(!Algorithm::Serial.is_lockfree());
    }

    #[test]
    fn segment_policy_adaptive() {
        let p = SegmentPolicy::Adaptive { div: 2, max: 100 };
        assert_eq!(p.segment_len(1000, 5), 100); // clamped to max
        assert_eq!(p.segment_len(100, 5), 10);
        assert_eq!(p.segment_len(0, 5), 1); // never zero
        assert_eq!(p.segment_len(3, 8), 1);
    }

    #[test]
    fn segment_policy_fixed() {
        let p = SegmentPolicy::Fixed(7);
        assert_eq!(p.segment_len(1_000_000, 32), 7);
        assert_eq!(SegmentPolicy::Fixed(0).segment_len(10, 1), 1);
    }

    #[test]
    fn hub_threshold_auto() {
        let g = obfs_graph::gen::star(1000);
        let opts = BfsOptions::default();
        // avg degree ~2 -> auto threshold floors at 64
        assert_eq!(opts.resolved_hub_threshold(&g), 64);
        let opts2 = BfsOptions { hub_threshold: Some(5), ..Default::default() };
        assert_eq!(opts2.resolved_hub_threshold(&g), 5);
    }

    #[test]
    fn hybrid_decide_matches_beamer_rule() {
        let pol = HybridPolicy::default();
        // Top-down stays top-down while the frontier is edge-sparse.
        assert_eq!(pol.decide(Direction::TopDown, 10, 10, 1000, 100), Direction::TopDown);
        // mf > mu/α flips to bottom-up.
        assert_eq!(pol.decide(Direction::TopDown, 10, 200, 1000, 100), Direction::BottomUp);
        // Bottom-up holds while nf >= n/β ...
        assert_eq!(pol.decide(Direction::BottomUp, 50, 0, 0, 240), Direction::BottomUp);
        // ... and returns top-down once the frontier shrinks below n/β.
        assert_eq!(pol.decide(Direction::BottomUp, 5, 0, 0, 240), Direction::TopDown);
    }

    #[test]
    fn hybrid_forced_overrides_heuristic() {
        let td = HybridPolicy::forced(ForcedDirection::AlwaysTopDown);
        let bu = HybridPolicy::forced(ForcedDirection::AlwaysBottomUp);
        assert_eq!(td.decide(Direction::TopDown, 10, 1 << 40, 1, 100), Direction::TopDown);
        assert_eq!(bu.decide(Direction::BottomUp, 0, 0, 1 << 40, 100), Direction::BottomUp);
        assert_eq!(Direction::TopDown.label(), "td");
        assert_eq!(Direction::BottomUp.label(), "bu");
    }

    #[test]
    fn compaction_decide_follows_density_rule() {
        let pol = CompactionPolicy::default(); // density_div = 16
        assert!(!pol.decide(0, 1600), "empty next frontier never compacts");
        assert!(!pol.decide(99, 1600), "sparse frontier stays on dispatch");
        assert!(pol.decide(100, 1600), "nf >= n/16 compacts");
        assert!(pol.decide(1600, 1600));
        // Forced modes override the rule but never an empty frontier.
        assert!(CompactionPolicy::forced_on().decide(1, 1 << 40));
        assert!(!CompactionPolicy::forced_on().decide(0, 16));
        assert!(!CompactionPolicy::forced_off().decide(1 << 40, 16));
    }

    #[test]
    fn retry_budget_reasonable() {
        let opts = BfsOptions::default();
        assert!(opts.retry_budget(1) >= 4);
        assert!(opts.retry_budget(12) >= 2 * 12 * 4);
    }
}
