//! Algorithm selection and tuning knobs.

use obfs_runtime::Topology;
use obfs_sync::ChaosConfig;
use std::time::Duration;

/// The BFS algorithms of the paper (Table II) plus the §IV-D extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// `sbfs`: serial queue-based BFS.
    Serial,
    /// `BFSC`: centralized segment dispatch guarded by a global lock.
    Bfsc,
    /// `BFSCL`: centralized dispatch, optimistic lock-free.
    Bfscl,
    /// `BFSDL`: decentralized — `j` queue pools, optimistic lock-free.
    Bfsdl,
    /// `BFSW`: distributed randomized work-stealing with per-victim locks.
    Bfsw,
    /// `BFSWL`: work-stealing, optimistic lock-free.
    Bfswl,
    /// `BFSWS`: two-phase scale-free work-stealing with locks.
    Bfsws,
    /// `BFSWSL`: two-phase scale-free work-stealing, lock-free.
    Bfswsl,
    /// `EdgeCL` (§IV-D "further improvements"): edge-balanced optimistic
    /// centralized dispatch — segments are edge ranges, not vertex ranges.
    EdgeCl,
}

impl Algorithm {
    /// All parallel algorithms plus the serial baseline, in the order used
    /// by the paper's tables.
    pub const ALL: [Algorithm; 9] = [
        Algorithm::Serial,
        Algorithm::Bfsc,
        Algorithm::Bfscl,
        Algorithm::Bfsdl,
        Algorithm::Bfsw,
        Algorithm::Bfswl,
        Algorithm::Bfsws,
        Algorithm::Bfswsl,
        Algorithm::EdgeCl,
    ];

    /// Paper acronym.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Serial => "sbfs",
            Algorithm::Bfsc => "BFS_C",
            Algorithm::Bfscl => "BFS_CL",
            Algorithm::Bfsdl => "BFS_DL",
            Algorithm::Bfsw => "BFS_W",
            Algorithm::Bfswl => "BFS_WL",
            Algorithm::Bfsws => "BFS_WS",
            Algorithm::Bfswsl => "BFS_WSL",
            Algorithm::EdgeCl => "BFS_ECL",
        }
    }

    /// Parse a paper acronym (case-insensitive, underscores optional).
    pub fn from_name(s: &str) -> Option<Self> {
        let norm: String = s.chars().filter(|c| *c != '_').collect::<String>().to_ascii_uppercase();
        Self::ALL.into_iter().find(|a| {
            a.name().chars().filter(|c| *c != '_').collect::<String>().to_ascii_uppercase() == norm
        })
    }

    /// True for the variants that take no lock and no atomic RMW on the
    /// shared queue state.
    pub fn is_lockfree(&self) -> bool {
        matches!(
            self,
            Algorithm::Bfscl
                | Algorithm::Bfsdl
                | Algorithm::Bfswl
                | Algorithm::Bfswsl
                | Algorithm::EdgeCl
        )
    }

    /// True for the work-stealing family.
    pub fn is_work_stealing(&self) -> bool {
        matches!(
            self,
            Algorithm::Bfsw | Algorithm::Bfswl | Algorithm::Bfsws | Algorithm::Bfswsl
        )
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Duplicate-exploration suppression (§IV-D "further improvements").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DedupMode {
    /// The paper's evaluated configuration: duplicates tolerated.
    #[default]
    None,
    /// Owner-array suppression: pushes record the destination queue id in
    /// a shared array via arbitrary-concurrent-write (still no locks, no
    /// RMW); pops skip vertices whose recorded owner is a different queue.
    OwnerArray,
}

/// How segment sizes are chosen by the centralized dispatchers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentPolicy {
    /// Adaptive (the paper's choice): `s = clamp(remaining/(div*p), 1, max)`
    /// recomputed at every dispatch.
    Adaptive {
        /// Denominator factor: `s = remaining / (div * p)`.
        div: usize,
        /// Upper clamp on the segment length.
        max: usize,
    },
    /// Fixed segment length (ablation).
    Fixed(usize),
}

impl Default for SegmentPolicy {
    fn default() -> Self {
        SegmentPolicy::Adaptive { div: 2, max: 4096 }
    }
}

impl SegmentPolicy {
    /// Segment length for a dispatch given the remaining entries in the
    /// current queue and the worker count.
    #[inline]
    pub fn segment_len(&self, remaining: usize, threads: usize) -> usize {
        match *self {
            SegmentPolicy::Adaptive { div, max } => {
                (remaining / (div * threads).max(1)).clamp(1, max.max(1))
            }
            SegmentPolicy::Fixed(s) => s.max(1),
        }
    }
}

/// Per-level watchdog limits for graceful degradation (DESIGN.md §7).
///
/// The optimistic dispatchers recover from racy corruption by retrying;
/// a watchdog bounds how long a level may spend retrying before the
/// barrier leader finishes the level with a serial sweep. Each tripped
/// level is counted in [`crate::RunStats::degraded_levels`]; the
/// traversal stays correct either way (the sweep re-explores whatever
/// frontier entries the parallel phase left behind, and duplicate
/// exploration is idempotent within a level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WatchdogPolicy {
    /// Wall-clock budget per level. Workers poll it at dispatch
    /// granularity (segment fetches, steal attempts, pool probes).
    /// `Some(Duration::ZERO)` degrades every level — a correct, fully
    /// serial run useful for testing the fallback path.
    pub level_deadline: Option<Duration>,
    /// Per-call bound on consecutive dispatch retries (fetch retries,
    /// steal attempts, pool probes) before the level is declared
    /// degraded. Tighter than the paper's `c·p·log p` give-up budget:
    /// tripping it ends the whole level, not just one thread's search.
    pub max_fetch_retries: Option<u64>,
}

impl WatchdogPolicy {
    /// A deadline-only policy.
    pub fn deadline(d: Duration) -> Self {
        Self { level_deadline: Some(d), max_fetch_retries: None }
    }
}

/// Tuning options shared by all algorithms. `Default` mirrors the paper's
/// configuration on a generic machine.
#[derive(Debug, Clone)]
pub struct BfsOptions {
    /// Worker threads `p`.
    pub threads: usize,
    /// Segment sizing for the centralized/decentralized dispatchers.
    pub segment: SegmentPolicy,
    /// `c` in the `c·p·log p` steal/pool-search retry budgets (paper
    /// §IV-A3, §IV-B1; `c > 1`).
    pub retry_c: usize,
    /// Minimum victim segment length worth stealing (steals of shorter
    /// segments are counted as "segment too small" failures).
    pub steal_min: usize,
    /// Degree above which a vertex is treated as a hub by the scale-free
    /// variants; `None` derives `max(64, 8 * avg_degree)` from the graph.
    pub hub_threshold: Option<usize>,
    /// Pool count `j ∈ [1, p]` for `BFSDL`.
    pub pools: usize,
    /// Duplicate suppression mode.
    pub dedup: DedupMode,
    /// Record a BFS-tree parent per vertex (arbitrary concurrent write).
    pub record_parents: bool,
    /// Scale-free variants: use optimistic edge-segment stealing in the
    /// hub phase instead of static per-thread chunks (the alternative the
    /// paper tried and found usually slower).
    pub phase2_steal: bool,
    /// Socket layout for NUMA-aware victim selection (§IV-C). `None`
    /// means uniform random victims.
    pub topology: Option<Topology>,
    /// Seed for victim selection and pool choice randomness.
    pub seed: u64,
    /// Record per-level frontier sizes, durations and merged counter
    /// deltas into [`crate::RunStats::level_stats`] (leader-side,
    /// near-zero cost).
    pub collect_level_stats: bool,
    /// Install a flight recorder per worker with this many event slots
    /// (see `obfs_sync::flight`); the drained rings land in
    /// [`crate::RunStats::flight`]. Only effective on builds with the
    /// `trace` feature — without it the option is carried but the run
    /// records nothing and `flight` stays `None`.
    pub flight_recorder: Option<usize>,
    /// Deterministic fault-injection plan installed per worker (stream =
    /// thread id). Only honoured when the crate is built with the `chaos`
    /// feature; without it the plan is carried but never activates.
    pub chaos: Option<ChaosConfig>,
    /// Per-level watchdog; `None` (default) disables all polling.
    pub watchdog: Option<WatchdogPolicy>,
}

impl Default for BfsOptions {
    fn default() -> Self {
        Self {
            threads: 4,
            segment: SegmentPolicy::default(),
            retry_c: 2,
            steal_min: 4,
            hub_threshold: None,
            pools: 1,
            dedup: DedupMode::None,
            record_parents: false,
            phase2_steal: false,
            topology: None,
            seed: 0x0BF5,
            collect_level_stats: false,
            flight_recorder: None,
            chaos: None,
            watchdog: None,
        }
    }
}

impl BfsOptions {
    /// Validate and clamp derived fields against a concrete graph.
    pub fn resolved_hub_threshold(&self, graph: &obfs_graph::CsrGraph) -> usize {
        self.hub_threshold.unwrap_or_else(|| {
            let n = graph.num_vertices().max(1);
            let avg = (graph.num_edges() as usize / n).max(1);
            (8 * avg).max(64)
        })
    }

    /// Steal / pool-search retry budget for `k` choices.
    pub fn retry_budget(&self, k: usize) -> usize {
        obfs_util::retry_budget(self.retry_c.max(2), k, 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for a in Algorithm::ALL {
            assert_eq!(Algorithm::from_name(a.name()), Some(a), "{a}");
        }
        assert_eq!(Algorithm::from_name("bfswsl"), Some(Algorithm::Bfswsl));
        assert_eq!(Algorithm::from_name("BFS_CL"), Some(Algorithm::Bfscl));
        assert_eq!(Algorithm::from_name("nope"), None);
    }

    #[test]
    fn lockfree_classification() {
        assert!(Algorithm::Bfscl.is_lockfree());
        assert!(Algorithm::Bfswsl.is_lockfree());
        assert!(!Algorithm::Bfsc.is_lockfree());
        assert!(!Algorithm::Bfsw.is_lockfree());
        assert!(!Algorithm::Serial.is_lockfree());
    }

    #[test]
    fn segment_policy_adaptive() {
        let p = SegmentPolicy::Adaptive { div: 2, max: 100 };
        assert_eq!(p.segment_len(1000, 5), 100); // clamped to max
        assert_eq!(p.segment_len(100, 5), 10);
        assert_eq!(p.segment_len(0, 5), 1); // never zero
        assert_eq!(p.segment_len(3, 8), 1);
    }

    #[test]
    fn segment_policy_fixed() {
        let p = SegmentPolicy::Fixed(7);
        assert_eq!(p.segment_len(1_000_000, 32), 7);
        assert_eq!(SegmentPolicy::Fixed(0).segment_len(10, 1), 1);
    }

    #[test]
    fn hub_threshold_auto() {
        let g = obfs_graph::gen::star(1000);
        let opts = BfsOptions::default();
        // avg degree ~2 -> auto threshold floors at 64
        assert_eq!(opts.resolved_hub_threshold(&g), 64);
        let opts2 = BfsOptions { hub_threshold: Some(5), ..Default::default() };
        assert_eq!(opts2.resolved_hub_threshold(&g), 5);
    }

    #[test]
    fn retry_budget_reasonable() {
        let opts = BfsOptions::default();
        assert!(opts.retry_budget(1) >= 4);
        assert!(opts.retry_budget(12) >= 2 * 12 * 4);
    }
}
