//! Model of the BFSCL centralized lock-free segment fetch
//! (`consume_pool_lockfree`), paper §IV-A.2.
//!
//! Each model thread runs the exact racy-operation sequence of the real
//! fetch loop — one shared-memory access per step, in program order:
//!
//! ```text
//! loop {
//!   load cursor                         (LoadCursor)
//!   loop { load front[k]; load rear[k] }  until front < rear  (Scan*)
//!   load front[k] -> f'                 (ReFront)
//!   load rear[k]  -> r'                 (ReRear; retry if f' >= r')
//!   store cursor = k                    (StoreCursor)
//!   store front[k] = f' + s             (StoreFront)
//!   load rear[k] -> live_end            (LiveEnd)
//!   for i in f'..f'+s { load slot; store slot = 0 }  (Walk*)
//! }
//! ```
//!
//! with `s = max(1, (r' - f') / P)` — a pure function of `(f, r, p)`, as
//! the no-gap invariant requires. The **weakened** variant deletes the
//! `f' >= r'` retry check; the model flags the moment an invalid segment
//! (`f' >= r'`) is cut instead of rejected, which is exactly the
//! invariant "every invalid segment is rejected by a sanity check". The
//! retry path carries the real watchdog's retry budget (a thread gives
//! up after [`RETRY_BUDGET`] consecutive failed re-reads), so the model
//! terminates without wall clocks.
//!
//! Instance: 2 threads × 2 queues with rears [2, 1]; slot arrays carry
//! one trailing sentinel word each, mirroring `FrontierQueue`'s
//! `capacity + 1` layout, and `take_slot`'s capacity guard is mirrored
//! by the walk's bounds check.

use obfs_sync::model::{Explorer, Footprint, ModelThread, Outcome, System, VirtualMemory};

/// Threads in the model instance.
pub const P: usize = 2;
/// Queues in the pool.
pub const NQ: usize = 2;
/// Immutable level rears per queue.
pub const REARS: [u32; NQ] = [2, 1];
/// Consecutive failed re-reads before a thread gives up (the real
/// dispatcher's `watchdog_retry` budget, made finite and deterministic).
pub const RETRY_BUDGET: u32 = 2;

/// Word addresses.
pub const CURSOR: usize = 0;
/// `front[k]` lives at `FRONT0 + k`.
pub const FRONT0: usize = 1;
/// `rear[k]` lives at `REAR0 + k`.
pub const REAR0: usize = 3;
/// Queue `k`'s slots start at `SLOTS0 + k * (max rear + 1)`… computed by
/// [`slot_addr`]; kept contiguous per queue.
pub const SLOTS0: usize = 5;

/// Capacity (slot-array length) of queue `k`: rear + 1 sentinel word.
pub fn capacity(k: usize) -> usize {
    REARS[k] as usize + 1
}

/// Base address of queue `k`'s slot array.
fn slots_base(k: usize) -> usize {
    let mut a = SLOTS0;
    for q in 0..k {
        a += capacity(q);
    }
    a
}

/// Address of slot `i` of queue `k`.
pub fn slot_addr(k: usize, i: usize) -> usize {
    slots_base(k) + i
}

fn words() -> usize {
    slots_base(NQ)
}

/// The model's segment policy: `max(1, remaining / P)` — pure in
/// `(f, r, p)` like the real `SegmentPolicy` must be.
fn segment_len(remaining: u32) -> u32 {
    (remaining / P as u32).max(1)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pc {
    LoadCursor,
    ScanFront,
    ScanRear,
    ReFront,
    ReRear,
    StoreCursor,
    StoreFront,
    LiveEnd,
    WalkLoad,
    WalkClear,
    Done,
}

/// One fetching worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fetcher {
    weakened: bool,
    pc: Pc,
    k: usize,
    scan_front: u32,
    f: u32,
    r: u32,
    s: u32,
    i: u32,
    live_end: u32,
    retries: u32,
    pending: u32,
    /// (queue, slot, value) taken by this thread, in order.
    pub takes: Vec<(usize, usize, u32)>,
    /// Mid-segment cleared-slot aborts observed (recovery accounting).
    pub stale_aborts: u32,
}

impl Fetcher {
    fn new(weakened: bool) -> Self {
        Self {
            weakened,
            pc: Pc::LoadCursor,
            k: 0,
            scan_front: 0,
            f: 0,
            r: 0,
            s: 0,
            i: 0,
            live_end: 0,
            retries: 0,
            pending: 0,
            takes: Vec::new(),
            stale_aborts: 0,
        }
    }

    /// Mirror of the real walk's `None` arm in `take_slot` + the
    /// stale-accounting branch.
    fn walk_none(&mut self) {
        if self.i < self.live_end {
            self.stale_aborts += 1;
        }
        self.pc = Pc::LoadCursor;
    }
}

impl ModelThread for Fetcher {
    fn done(&self) -> bool {
        self.pc == Pc::Done
    }

    fn footprint(&self, _mem: &VirtualMemory) -> Footprint {
        match self.pc {
            Pc::LoadCursor => Footprint::Read(CURSOR),
            Pc::ScanFront if self.k >= NQ => Footprint::Internal,
            Pc::ScanFront => Footprint::Read(FRONT0 + self.k),
            Pc::ScanRear => Footprint::Read(REAR0 + self.k),
            Pc::ReFront => Footprint::Read(FRONT0 + self.k),
            Pc::ReRear => Footprint::Read(REAR0 + self.k),
            Pc::StoreCursor => Footprint::Write(CURSOR),
            Pc::StoreFront => Footprint::Write(FRONT0 + self.k),
            Pc::LiveEnd => Footprint::Read(REAR0 + self.k),
            Pc::WalkLoad if (self.i as usize) >= capacity(self.k) => Footprint::Internal,
            Pc::WalkLoad => Footprint::Read(slot_addr(self.k, self.i as usize)),
            Pc::WalkClear => Footprint::Write(slot_addr(self.k, self.i as usize)),
            Pc::Done => Footprint::Internal,
        }
    }

    fn step(&mut self, tid: usize, mem: &mut VirtualMemory) -> Result<(), String> {
        match self.pc {
            Pc::LoadCursor => {
                self.k = (mem.load(tid, CURSOR) as usize).min(NQ);
                self.pc = Pc::ScanFront;
            }
            Pc::ScanFront => {
                if self.k >= NQ {
                    self.pc = Pc::Done; // pool exhausted from our view
                } else {
                    self.scan_front = mem.load(tid, FRONT0 + self.k);
                    self.pc = Pc::ScanRear;
                }
            }
            Pc::ScanRear => {
                let rear = mem.load(tid, REAR0 + self.k);
                if self.scan_front < rear {
                    self.pc = Pc::ReFront;
                } else {
                    self.k += 1;
                    self.pc = Pc::ScanFront;
                }
            }
            Pc::ReFront => {
                self.f = mem.load(tid, FRONT0 + self.k);
                self.pc = Pc::ReRear;
            }
            Pc::ReRear => {
                self.r = mem.load(tid, REAR0 + self.k);
                if !self.weakened && self.f >= self.r {
                    // The sanity-check retry (real code: fetch_retries).
                    self.retries += 1;
                    if self.retries > RETRY_BUDGET {
                        self.pc = Pc::Done; // watchdog budget: degrade
                    } else {
                        self.pc = Pc::ScanFront; // rescan from current k
                    }
                } else if self.f >= self.r {
                    // Weakened: the check is gone and an invalid segment
                    // is about to be cut — the invariant violation.
                    return Err(format!(
                        "cut invalid segment on queue {}: f'={} >= r'={} \
                         (the sanity-check retry would have rejected it)",
                        self.k, self.f, self.r
                    ));
                } else {
                    self.retries = 0;
                    self.s = segment_len(self.r - self.f);
                    self.pc = Pc::StoreCursor;
                }
            }
            Pc::StoreCursor => {
                mem.store(tid, CURSOR, self.k as u32);
                self.pc = Pc::StoreFront;
            }
            Pc::StoreFront => {
                mem.store(tid, FRONT0 + self.k, self.f + self.s);
                self.pc = Pc::LiveEnd;
            }
            Pc::LiveEnd => {
                self.live_end = mem.load(tid, REAR0 + self.k);
                self.i = self.f;
                self.pc = Pc::WalkLoad;
            }
            Pc::WalkLoad => {
                if (self.i as usize) >= capacity(self.k) {
                    // take_slot's capacity guard.
                    self.walk_none();
                } else {
                    let v = mem.load(tid, slot_addr(self.k, self.i as usize));
                    if v == 0 {
                        self.walk_none();
                    } else {
                        self.pending = v;
                        self.pc = Pc::WalkClear;
                    }
                }
            }
            Pc::WalkClear => {
                mem.store(tid, slot_addr(self.k, self.i as usize), 0);
                self.takes.push((self.k, self.i as usize, self.pending));
                self.i += 1;
                self.pc = if self.i >= self.f + self.s { Pc::LoadCursor } else { Pc::WalkLoad };
            }
            Pc::Done => {}
        }
        Ok(())
    }
}

/// The initial system: queues filled to their rears with distinct
/// nonzero encoded vertices, cursors and fronts zero.
#[allow(clippy::needless_range_loop)] // k, i are model memory addresses
pub fn system(weakened: bool) -> System<Fetcher> {
    let mut mem = VirtualMemory::new(P, words(), true);
    for k in 0..NQ {
        mem.init(REAR0 + k, REARS[k]);
        for i in 0..REARS[k] as usize {
            mem.init(slot_addr(k, i), 10 + (k * 8 + i) as u32 + 1);
        }
    }
    System::new(mem, vec![Fetcher::new(weakened); P])
}

/// Terminal invariants: coverage, bounded duplicates, clean memory.
#[allow(clippy::needless_range_loop)] // k, i are model memory addresses
pub fn check_final(sys: &System<Fetcher>) -> Result<(), String> {
    let mut taken = [[0u32; 4]; NQ];
    for t in &sys.threads {
        for &(k, i, v) in &t.takes {
            if v == 0 {
                return Err(format!("thread explored the sentinel value 0 at queue {k} slot {i}"));
            }
            taken[k][i] += 1;
        }
    }
    for k in 0..NQ {
        for i in 0..REARS[k] as usize {
            if sys.mem.committed(slot_addr(k, i)) != 0 {
                return Err(format!("slot {i} of queue {k} never consumed (coverage violation)"));
            }
            if taken[k][i] == 0 {
                return Err(format!("slot {i} of queue {k} zeroed but never explored"));
            }
            if taken[k][i] > P as u32 {
                return Err(format!(
                    "slot {i} of queue {k} explored {}x > P={P} (duplicate bound violation)",
                    taken[k][i]
                ));
            }
        }
    }
    Ok(())
}

/// Explore the core. `weakened` deletes the `f' >= r'` retry check.
pub fn check(weakened: bool, bounds: Explorer) -> Outcome {
    bounds.explore(&system(weakened), check_final)
}
