//! Differential replay: model-checker counterexamples, lowered onto the
//! **real** dispatchers through `obfs_sync::chaos` scripts.
//!
//! Each test takes the counterexample schedule the explorer finds for a
//! *weakened* protocol core, replays it in the model with the failing
//! thread's memory accesses traced, and feeds the exact load values that
//! thread observed into the corresponding real code path (positionally,
//! via [`obfs_sync::chaos::install_script`]). The real protocol — with
//! its sanity check intact — must *reject* the observation sequence that
//! violates the weakened model, landing in the matching stats/flight
//! bucket. That is the correspondence claim: the model's racy-operation
//! order is the real dispatcher's racy-operation order, so a schedule
//! that breaks the model-without-the-check exercises exactly the check
//! in the real code.
//!
//! Chaos scripts are thread-local and these tests drive the dispatchers
//! on the test thread, so no worker pool is involved.

use super::*;
use crate::driver::LevelEnv;
use crate::frontier::EMPTY_SLOT;
use crate::options::BfsOptions;
use crate::state::RunState;
use crate::stats::ThreadStats;
use crate::worksteal::{OwnedSegment, WorkStealing};
use obfs_sync::chaos::{install_script, uninstall_script, ChaosScript};
use obfs_sync::model::{replay, Choice, MemOp};

/// Replay `schedule` against `sys` with thread `tid`'s accesses traced;
/// return the `(addr, value)` pairs of every load it performed, after
/// asserting the replay reproduces `failure`.
fn traced_loads<T: obfs_sync::model::ModelThread>(
    mut sys: obfs_sync::model::System<T>,
    schedule: &[Choice],
    tid: usize,
    failure: &str,
) -> Vec<(usize, u32)> {
    sys.mem.trace_thread(tid);
    let (end, res) = replay(&sys, schedule);
    assert_eq!(res, Err(failure.to_string()), "replay must reproduce the counterexample");
    end.mem
        .trace()
        .iter()
        .filter_map(|op| match *op {
            MemOp::Load { addr, value } => Some((addr, value)),
            MemOp::Store { .. } => None,
        })
        .collect()
}

/// The thread whose step produced the counterexample: the schedule's
/// final choice (a `Step` — flushes never fail).
fn failing_tid(cx: &obfs_sync::model::Counterexample) -> usize {
    cx.schedule.last().expect("non-empty schedule").tid()
}

fn bounds() -> Explorer {
    Explorer { max_steps: 260, max_schedules: 12_000 }
}

/// A graph of isolated vertices: exploring a popped vertex scans no
/// neighbors, so the real pop path performs exactly one hooked `u32`
/// load (`note_pop`'s level read) per take — making the script's
/// positional feed easy to line up with the model trace.
fn isolated(n: usize) -> obfs_graph::CsrGraph {
    obfs_graph::CsrGraph::from_edges(n, &[])
}

/// Centralized fetch: the weakened model cuts a segment from an
/// `f' >= r'` observation. Feeding the failing thread's fetch loads
/// (everything since its last cursor read) into the real
/// `consume_pool_lockfree` must trip the sanity-check retry instead.
#[test]
fn centralized_counterexample_hits_fetch_retry_in_real_dispatcher() {
    let cx = centralized::check(true, bounds()).counterexample.expect("weakened cx");
    let tid = failing_tid(&cx);
    let loads = traced_loads(centralized::system(true), &cx.schedule, tid, &cx.failure);

    // The violating fetch: from the last cursor load to the final
    // (front, rear) re-read pair. All of these are index (usize) loads
    // in the real dispatcher; the walk's slot loads live at >= SLOTS0
    // and cannot appear between a cursor load and the fetch failure.
    let start = loads
        .iter()
        .rposition(|&(addr, _)| addr == centralized::CURSOR)
        .expect("counterexample thread re-read the cursor");
    let fetch: Vec<usize> = loads[start..]
        .iter()
        .map(|&(addr, v)| {
            assert!(addr < centralized::SLOTS0, "fetch loads are index loads");
            v as usize
        })
        .collect();
    let (f, r) = (fetch[fetch.len() - 2], fetch[fetch.len() - 1]);
    assert!(f >= r, "the final re-read pair is the invalid observation");

    // Real state: same thread count; input queues empty so the real
    // dispatcher drains and returns once the script is exhausted.
    let g = isolated(8);
    let opts = BfsOptions { threads: centralized::P, ..Default::default() };
    let st = RunState::new(&g, &opts);
    st.pool_cursors[0].store(0);
    let mut ts = ThreadStats::default();
    let mut out_rear = 0usize;

    install_script(&ChaosScript {
        usize_loads: fetch.iter().map(|&v| Some(v)).collect(),
        u32_loads: Vec::new(),
    });
    crate::centralized::consume_pool_lockfree(
        &st,
        st.qin(0),
        0,
        (0, centralized::P),
        0,
        0,
        &mut out_rear,
        st.qout(0).queue(0),
        &mut ts,
    );
    let rep = uninstall_script();

    assert_eq!(rep.fed_usize, fetch.len(), "every model load was replayed");
    assert_eq!(rep.leftover, 0);
    assert_eq!(ts.fetch_retries, 1, "the real sanity check rejected the invalid segment");
    assert_eq!(ts.segments_fetched, 0, "no segment was cut from the bad observation");
}

/// Zero-on-read: the weakened model "decodes" the empty-slot sentinel a
/// co-walker left behind. Feeding the failing walker's slot loads into
/// the real sentinel walk must stop it at that slot with a counted
/// stale abort — and consume exactly the slots the model walker took.
#[test]
fn zero_on_read_counterexample_hits_stale_abort_in_real_walk() {
    let cx = zero_on_read::check(true, bounds()).counterexample.expect("weakened cx");
    let tid = failing_tid(&cx);
    let loads = traced_loads(zero_on_read::system(true), &cx.schedule, tid, &cx.failure);

    // The walker's slot loads (addr >= 1; addr 0 is the rear read). The
    // last one observed the sentinel.
    let slots: Vec<u32> =
        loads.iter().filter(|&&(addr, _)| addr >= 1).map(|&(_, v)| v).collect();
    assert_eq!(*slots.last().unwrap(), EMPTY_SLOT);

    // Real state: queue 0 filled exactly like the model instance
    // (vertices 20..20+REAR encode to the model's slot values 21..).
    let g = isolated(32);
    let opts = BfsOptions { threads: zero_on_read::P, ..Default::default() };
    let st = RunState::new(&g, &opts);
    let queue = st.qin(0).queue(0);
    let mut rear = 0usize;
    for v in 0..zero_on_read::REAR {
        queue.push(&mut rear, 20 + v);
    }

    // Positional u32 feed: one entry per take_slot read, plus one
    // pass-through (`None`) for the level load `note_pop` performs after
    // each live take. Isolated vertices add no further hooked loads.
    let mut u32_loads = Vec::new();
    for &s in &slots {
        u32_loads.push(Some(s));
        if s != EMPTY_SLOT {
            u32_loads.push(None);
        }
    }

    let env = LevelEnv { st: &st, parity: 0, level: 0 };
    let strat = WorkStealing { locked: false, scale_free: false };
    let mut seg = OwnedSegment { q: 0, f: 0, r: zero_on_read::REAR as usize };
    let mut ts = ThreadStats::default();
    let mut out_rear = 0usize;

    install_script(&ChaosScript { usize_loads: Vec::new(), u32_loads });
    strat.walk_sentinel(&env, 1, &mut seg, &mut out_rear, &mut ts);
    let rep = uninstall_script();

    assert_eq!(rep.fed_u32, slots.len(), "every model slot read was replayed");
    assert_eq!(rep.leftover, 0);
    assert_eq!(ts.stale_slot_aborts, 1, "the real walk aborted at the co-walker's clear");
    assert_eq!(seg.f as u32 + 1, slots.len() as u32, "walk stopped at the model's slot");
    // The walk cleared exactly the slots the model walker took.
    assert_eq!(ts.vertices_explored as usize, slots.len() - 1);
    for i in 0..seg.f {
        assert_eq!(queue.slot(i), EMPTY_SLOT, "taken slot {i} is zeroed");
    }
}

/// Work-steal snapshot: the weakened model accepts a torn `(q', f', r')`
/// with `r'` past the victim queue's rear. Feeding the thief's four
/// snapshot loads into the real `try_steal_optimistic` must land the
/// attempt in the `invalid` sanity-failure bucket with nothing stolen.
#[test]
fn worksteal_counterexample_hits_invalid_steal_in_real_dispatcher() {
    let cx = worksteal::check(true, bounds()).counterexample.expect("weakened cx");
    let tid = failing_tid(&cx);
    let loads = traced_loads(worksteal::system(true), &cx.schedule, tid, &cx.failure);

    // The violating snapshot: the thief's final four loads are
    // q', f', r' (the descriptor) and rear[q'] (the sanity re-read).
    let tail: Vec<usize> = loads[loads.len() - 4..].iter().map(|&(_, v)| v as usize).collect();
    let (q, f, r, rear) = (tail[0], tail[1], tail[2], tail[3]);
    assert!(f < r && q < worksteal::P, "torn snapshot passed the earlier checks");
    assert!(r > rear, "the torn snapshot overruns the victim queue");

    let g = isolated(32);
    let opts = BfsOptions { threads: worksteal::P, ..Default::default() };
    let st = RunState::new(&g, &opts);
    let env = LevelEnv { st: &st, parity: 0, level: 0 };
    let strat = WorkStealing { locked: false, scale_free: false };
    let mut ts = ThreadStats::default();

    install_script(&ChaosScript {
        usize_loads: vec![Some(q), Some(f), Some(r), Some(rear)],
        u32_loads: Vec::new(),
    });
    let got = strat.try_steal_optimistic(&env, 0, 1, &mut ts);
    let rep = uninstall_script();

    assert!(got.is_none(), "a torn snapshot must never be stolen");
    assert_eq!(rep.fed_usize, 4, "every model load was replayed");
    assert_eq!(rep.leftover, 0);
    assert_eq!(ts.steal.invalid, 1, "the real snapshot sanity check rejected it");
    assert_eq!(st.descs[0].snapshot(), (0, 0, 0), "thief published nothing");
    assert_eq!(st.descs[1].snapshot(), (0, 0, 0), "victim untouched");
}

/// Batch-or-claim: the weakened model overwrites an already-claimed
/// per-query level slot after a lost membership OR made the vertex look
/// undiscovered. Reconstructing the late claimant's observation in real
/// batch state — membership word missing the bit, level slot claimed —
/// and feeding its revalidation read into the real
/// `try_discover_batch` must *reject* the claim: the slot keeps its
/// first-claim level, nothing is pushed, and only the membership bit is
/// OR'd back.
#[test]
fn batch_counterexample_hits_slot_revalidation_in_real_kernel() {
    let cx = batch_or_claim::check(true, bounds()).counterexample.expect("weakened cx");
    let tid = failing_tid(&cx);
    let loads = traced_loads(batch_or_claim::system(true), &cx.schedule, tid, &cx.failure);

    // The late claimant's final load is the revalidation read of query
    // 0's level slot (the check the weakening deleted); the load before
    // it is the membership word with the lost bit.
    let &(slot_addr, slot_level) = loads.last().unwrap();
    assert_eq!(slot_addr, batch_or_claim::slot_addr(0));
    assert_ne!(slot_level, batch_or_claim::UNSET, "slot was claimed at level 1");
    let &(vis_addr, vis) = &loads[loads.len() - 2];
    assert_eq!(vis_addr, batch_or_claim::VISITED);
    assert_eq!(vis & 1, 0, "query-0 bit was lost from the membership word");

    // Real state: a 2-query batch; plant the model's observation — the
    // slot claimed at level 1, the membership word missing bit 0.
    let g = isolated(8);
    let w: u32 = 4;
    let opts = BfsOptions { threads: 1, ..Default::default() };
    let st = RunState::new_batch(&g, &opts, None, &[0, 1]);
    let b = st.batch.as_ref().expect("batch state armed");
    b.levels.set(w as usize * b.k, slot_level);
    b.visited_by.set(w as usize, u64::from(vis));
    let mut ts = ThreadStats::default();
    let mut out_rear = 0usize;

    // One hooked `u32` load on the rejection path: the revalidation
    // read (the membership load is a `u64` and passes through).
    install_script(&ChaosScript {
        usize_loads: Vec::new(),
        u32_loads: vec![Some(slot_level)],
    });
    st.try_discover_batch(w, 3, 1, 2, st.qout(0).queue(0), &mut out_rear, &mut ts);
    let rep = uninstall_script();

    assert_eq!(rep.fed_u32, 1, "the revalidation read was replayed");
    assert_eq!(rep.leftover, 0);
    assert_eq!(ts.vertices_discovered, 0, "the real revalidation rejected the claim");
    assert_eq!(out_rear, 0, "a rejected claim pushes nothing");
    assert_eq!(
        b.levels.get(w as usize * b.k),
        slot_level,
        "the slot keeps its first-claim level"
    );
    assert_eq!(b.visited_by.get(w as usize), u64::from(vis) | 1, "the bit was OR'd back");
}
