//! Bounded model checking of the four racy protocol cores.
//!
//! Each submodule re-expresses one dispatcher's racy inner loop as an
//! [`obfs_sync::model::ModelThread`] state machine over virtualized TSO
//! memory, mirroring the real code's *exact* racy-operation order (every
//! `RacyU32`/`RacyUsize` load and store becomes one model step, in
//! program order). The explorer then enumerates interleavings and delayed
//! store-buffer flushes up to a bound, checking the paper's invariants:
//!
//! * **Coverage** — every live queue slot is taken (explored) at least
//!   once; equivalently, every slot ends committed-zero with ≥ 1 taker.
//! * **Bounded duplicates** — no slot is taken more than `P` times.
//! * **Validity** — every segment a thread acts on satisfies
//!   `f < r ≤ rear` (invalid ones must be *rejected* by a sanity check,
//!   never consumed); all slot accesses stay in bounds.
//! * **Termination** — every bounded execution reaches the level barrier
//!   (all threads done, all store buffers drained) within the step
//!   bound: `truncated == 0`.
//!
//! Every core also has a **weakened** variant with exactly one sanity
//! check deleted (the seeded bug). The checker must find a
//! counterexample schedule for each weakened variant and pass clean on
//! the real protocol; `tests/` replay those counterexamples against the
//! real dispatchers through `obfs_sync::chaos` scripts (see `diff`).
//!
//! Everything here is deterministic and seedless: no clocks, no RNG, no
//! hash-order dependence — the report in [`ModelReport::render`] is
//! byte-stable and golden-tested via `obfs model`.

pub mod batch_or_claim;
pub mod centralized;
pub mod worksteal;
pub mod zero_on_read;

#[cfg(all(test, feature = "chaos"))]
mod diff;

use obfs_sync::model::Outcome;
pub use obfs_sync::model::Explorer;

/// The bounds `obfs model` (and the golden test) run with: deep enough
/// that every core clears 10k distinct schedules (zero-on-read's pruned
/// space is explored *completely*), shallow enough to finish in seconds.
pub const DEFAULT_BOUNDS: Explorer = Explorer { max_steps: 260, max_schedules: 40_000 };

/// Which protocol variant a run explored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The protocol as implemented (all sanity checks present).
    Real,
    /// One sanity check deleted (the seeded bug the checker must find).
    Weakened,
}

/// One explored (core, variant) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreRun {
    /// Core name (stable identifier used in reports and tests).
    pub core: &'static str,
    /// Which sanity check the weakened variant deletes.
    pub weakening: &'static str,
    /// Variant explored.
    pub variant: Variant,
    /// What the explorer found.
    pub outcome: Outcome,
}

impl CoreRun {
    /// Did this run behave as the paper predicts? Real variants must
    /// hold every invariant and terminate within the bound; weakened
    /// variants must yield a counterexample.
    pub fn ok(&self) -> bool {
        match self.variant {
            Variant::Real => self.outcome.counterexample.is_none() && self.outcome.truncated == 0,
            Variant::Weakened => self.outcome.counterexample.is_some(),
        }
    }
}

/// Results for every core × variant, renderable as a byte-stable report.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelReport {
    /// The exploration bounds every run used.
    pub bounds: Explorer,
    /// All runs, in fixed order (core order × {real, weakened}).
    pub runs: Vec<CoreRun>,
}

/// Run every protocol core through the bounded explorer. `bounds`
/// applies to each (core, variant) run independently.
pub fn check_all(bounds: Explorer) -> ModelReport {
    let mut runs = Vec::new();
    for variant in [Variant::Real, Variant::Weakened] {
        runs.push(CoreRun {
            core: "centralized-fetch",
            weakening: "f' >= r' retry check deleted",
            variant,
            outcome: centralized::check(variant == Variant::Weakened, bounds),
        });
    }
    for variant in [Variant::Real, Variant::Weakened] {
        runs.push(CoreRun {
            core: "zero-on-read",
            weakening: "empty-slot sentinel stop deleted",
            variant,
            outcome: zero_on_read::check(variant == Variant::Weakened, bounds),
        });
    }
    for variant in [Variant::Real, Variant::Weakened] {
        runs.push(CoreRun {
            core: "work-steal-snapshot",
            weakening: "r' <= rear[q'] snapshot check deleted",
            variant,
            outcome: worksteal::check(variant == Variant::Weakened, bounds),
        });
    }
    for variant in [Variant::Real, Variant::Weakened] {
        runs.push(CoreRun {
            core: "batch-or-claim",
            weakening: "level-slot revalidation deleted",
            variant,
            outcome: batch_or_claim::check(variant == Variant::Weakened, bounds),
        });
    }
    ModelReport { bounds, runs }
}

impl ModelReport {
    /// True iff every real variant holds and every seeded bug was found.
    pub fn passed(&self) -> bool {
        self.runs.iter().all(CoreRun::ok)
    }

    /// Deterministic human-readable report (byte-stable across runs and
    /// machines: the model has no clocks, seeds, or hash ordering).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "== obfs model: bounded interleaving exploration ==");
        let _ = writeln!(s, "memory model: per-thread TSO store buffers (FIFO flush, store-to-load forwarding)");
        let _ = writeln!(
            s,
            "bounds: max {} steps/schedule, max {} schedules/run",
            self.bounds.max_steps, self.bounds.max_schedules
        );
        let _ = writeln!(s);
        let _ = writeln!(
            s,
            "{:<22} {:<9} {:>10} {:>9} {:>10}  verdict",
            "core", "variant", "schedules", "truncated", "pruned"
        );
        for run in &self.runs {
            let variant = match run.variant {
                Variant::Real => "real",
                Variant::Weakened => "weakened",
            };
            let verdict = match (run.variant, &run.outcome.counterexample) {
                (Variant::Real, None) if run.outcome.truncated == 0 => "pass".to_string(),
                (Variant::Real, None) => "FAIL (truncated executions: termination unproven)".to_string(),
                (Variant::Real, Some(cx)) => format!("FAIL: {}", cx.failure),
                (Variant::Weakened, Some(_)) => "counterexample found (expected)".to_string(),
                (Variant::Weakened, None) => "FAIL (seeded bug not found)".to_string(),
            };
            let _ = writeln!(
                s,
                "{:<22} {:<9} {:>10} {:>9} {:>10}  {}",
                run.core, variant, run.outcome.schedules, run.outcome.truncated, run.outcome.pruned, verdict
            );
        }
        for run in &self.runs {
            if run.variant != Variant::Weakened {
                continue;
            }
            let _ = writeln!(s);
            let _ = writeln!(s, "{} [{}]", run.core, run.weakening);
            match &run.outcome.counterexample {
                Some(cx) => {
                    let _ = writeln!(s, "  violated: {}", cx.failure);
                    let _ = writeln!(s, "  schedule: {}", cx.render_schedule());
                }
                None => {
                    let _ = writeln!(s, "  no counterexample found within bounds");
                }
            }
        }
        let _ = writeln!(s);
        let holds = self.runs.iter().filter(|r| r.variant == Variant::Real && r.ok()).count();
        let found = self.runs.iter().filter(|r| r.variant == Variant::Weakened && r.ok()).count();
        let n = self.runs.len() / 2;
        let _ = writeln!(
            s,
            "model: {} ({holds}/{n} cores hold; {found}/{n} seeded bugs found)",
            if self.passed() { "PASS" } else { "FAIL" }
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// One shared exploration for the debug-build unit tests (the full
    /// DEFAULT_BOUNDS run is exercised in release by the CLI golden
    /// test); 12k schedules per run keeps `cargo test` quick while still
    /// clearing the 10k-per-core bar.
    fn report() -> &'static ModelReport {
        static R: OnceLock<ModelReport> = OnceLock::new();
        R.get_or_init(|| check_all(Explorer { max_steps: 260, max_schedules: 12_000 }))
    }

    #[test]
    fn all_cores_hold_and_all_seeded_bugs_are_found() {
        let report = report();
        for run in &report.runs {
            assert!(
                run.ok(),
                "{} ({:?}) misbehaved: {:?}",
                run.core,
                run.variant,
                run.outcome.counterexample
            );
        }
        assert!(report.passed());
    }

    #[test]
    fn exploration_volume_meets_the_bar() {
        // Acceptance: >= 10k distinct schedules per protocol core, or a
        // *complete* exploration of the pruned space (strictly stronger
        // than any schedule count — batch-or-claim's instance finishes
        // in under 1k schedules).
        for run in &report().runs {
            if run.variant == Variant::Real {
                assert!(
                    run.outcome.complete || run.outcome.schedules >= 10_000,
                    "{}: only {} schedules explored (and incomplete)",
                    run.core,
                    run.outcome.schedules
                );
            }
        }
    }

    #[test]
    fn report_is_deterministic() {
        let bounds = Explorer { max_steps: 260, max_schedules: 2_000 };
        let a = check_all(bounds);
        let b = check_all(bounds);
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn weakened_counterexamples_replay() {
        use obfs_sync::model::replay;
        let bounds = Explorer { max_steps: 260, max_schedules: 12_000 };
        // Each weakened core's counterexample must reproduce its failure
        // when the schedule is replayed step-for-step.
        let cx = centralized::check(true, bounds).counterexample.expect("centralized cx");
        let (_, r) = replay(&centralized::system(true), &cx.schedule);
        assert_eq!(r, Err(cx.failure));

        let cx = zero_on_read::check(true, bounds).counterexample.expect("zero-on-read cx");
        let (_, r) = replay(&zero_on_read::system(true), &cx.schedule);
        assert_eq!(r, Err(cx.failure));

        let cx = worksteal::check(true, bounds).counterexample.expect("worksteal cx");
        let (_, r) = replay(&worksteal::system(true), &cx.schedule);
        assert_eq!(r, Err(cx.failure));

        let cx = batch_or_claim::check(true, bounds).counterexample.expect("batch cx");
        let (_, r) = replay(&batch_or_claim::system(true), &cx.schedule);
        assert_eq!(r, Err(cx.failure));
    }
}
