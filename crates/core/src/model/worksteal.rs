//! Model of the work-steal descriptor snapshot (`try_steal_optimistic` +
//! `walk_sentinel`), paper §IV-B.
//!
//! Thread 0 (the **owner**) walks its queue 0 segment by sentinel,
//! publishing `desc.f` after every take; when queue 0 is drained it
//! acquires a segment of queue 1 — as a successful steal would — by
//! publishing `desc.{q,f,r}` with three plain stores (the real
//! `SegmentDesc::set` store order), then walks that. Thread 1 (the
//! **thief**) runs the real steal sequence, one access per step:
//!
//! ```text
//! load desc.q; load desc.f; load desc.r       (snapshot: three racy loads)
//! if f' >= r'        -> victim-idle fail      (no memory access)
//! if q' >= threads   -> invalid fail          (short-circuits the rear load)
//! load rear[q']; if r' > rear -> invalid fail (the mixed-snapshot check)
//! store my desc = (q', mid, r'); store victim desc.r = mid
//! load slot[q'][mid]; if 0 -> stale fail
//! walk [mid, …) by sentinel
//! ```
//!
//! The interleaving of the thief's three snapshot loads with the owner's
//! three retarget stores produces exactly the paper's *mixed snapshot*
//! (e.g. old `q` with new `r`), and the TSO buffers add partially
//! committed variants. The **weakened** variant deletes the
//! `r' <= rear[q']` check: the model flags the moment a torn snapshot is
//! *accepted* — the invariant "every invalid segment is rejected by a
//! sanity check". (The model's `steal_min` is 1, so the too-small check
//! never fires and every race window stays open.)
//!
//! Instance: queue 0 with rear 1, queue 1 with rear 3; thief gives up
//! after [`MAX_TRIES`] failed attempts and stops after one successful
//! steal, keeping the schedule space finite.

use obfs_sync::model::{Explorer, Footprint, ModelThread, Outcome, System, VirtualMemory};

/// Threads (owner + thief); also the duplicate-exploration bound.
pub const P: usize = 2;
/// Queues.
pub const NQ: usize = 2;
/// Immutable level rears per queue.
pub const REARS: [u32; NQ] = [1, 3];
/// Failed steal attempts before the thief gives up.
pub const MAX_TRIES: u32 = 3;

/// Owner (victim) descriptor `q` word; `f`/`r` follow.
pub const DESC_OWNER: usize = 0;
/// Thief descriptor base.
pub const DESC_THIEF: usize = 3;
/// `rear[k]` lives at `REAR0 + k`.
pub const REAR0: usize = 6;
/// Slot arrays (one trailing sentinel word per queue) start here.
pub const SLOTS0: usize = 8;

/// Slot-array length of queue `k` (live slots + sentinel).
pub fn slots_len(k: usize) -> usize {
    REARS[k] as usize + 1
}

/// Address of slot `i` of queue `k`.
pub fn slot_addr(k: usize, i: usize) -> usize {
    let mut a = SLOTS0;
    for q in 0..k {
        a += slots_len(q);
    }
    a + i
}

fn words() -> usize {
    slot_addr(NQ - 1, 0) + slots_len(NQ - 1)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Owner,
    Thief,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pc {
    // Thief: the steal sequence.
    LoadQ,
    LoadF,
    LoadR,
    Check,
    LoadRear,
    SetQ,
    SetF,
    SetR,
    Shrink,
    Probe,
    // Shared: the sentinel walk.
    WalkLoad,
    StaleCheck,
    WalkClear,
    StoreF,
    // Owner: re-target to queue 1 (a successful steal's publication).
    RetargetQ,
    RetargetF,
    RetargetR,
    Done,
}

/// One worker (owner or thief).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Agent {
    role: Role,
    weakened: bool,
    pc: Pc,
    /// Walked queue (owner) / snapshotted queue (thief).
    q: u32,
    /// Walk cursor (owner) / snapshotted front (thief).
    f: u32,
    r: u32,
    rear: u32,
    mid: u32,
    pending: u32,
    attempts: u32,
    /// True once the owner has re-targeted (second walk ends the run).
    retargeted: bool,
    /// (queue, slot, value) taken by this thread, in order.
    pub takes: Vec<(usize, usize, u32)>,
    /// Mid-segment cleared-slot aborts observed.
    pub stale_aborts: u32,
    /// Steal failures: (victim_idle, invalid, stale).
    pub fails: (u32, u32, u32),
}

impl Agent {
    fn new(role: Role, weakened: bool) -> Self {
        Self {
            role,
            weakened,
            pc: match role {
                Role::Owner => Pc::WalkLoad,
                Role::Thief => Pc::LoadQ,
            },
            q: 0,
            f: 0,
            r: 0,
            rear: 0,
            mid: 0,
            pending: 0,
            attempts: 0,
            retargeted: false,
            takes: Vec::new(),
            stale_aborts: 0,
            fails: (0, 0, 0),
        }
    }

    /// My own descriptor's base word.
    fn my_desc(&self) -> usize {
        match self.role {
            Role::Owner => DESC_OWNER,
            Role::Thief => DESC_THIEF,
        }
    }

    /// A failed steal attempt: retry or give up.
    fn steal_fail(&mut self) {
        self.attempts += 1;
        self.pc = if self.attempts >= MAX_TRIES { Pc::Done } else { Pc::LoadQ };
    }

    /// The walk ended (sentinel / capacity): owner re-targets once,
    /// everyone else is done.
    fn walk_end(&mut self) {
        self.pc = if self.role == Role::Owner && !self.retargeted {
            Pc::RetargetQ
        } else {
            Pc::Done
        };
    }
}

impl ModelThread for Agent {
    fn done(&self) -> bool {
        self.pc == Pc::Done
    }

    fn footprint(&self, _mem: &VirtualMemory) -> Footprint {
        match self.pc {
            Pc::LoadQ => Footprint::Read(DESC_OWNER),
            Pc::LoadF => Footprint::Read(DESC_OWNER + 1),
            Pc::LoadR => Footprint::Read(DESC_OWNER + 2),
            Pc::Check => Footprint::Internal,
            Pc::LoadRear => Footprint::Read(REAR0 + self.q as usize),
            Pc::SetQ => Footprint::Write(DESC_THIEF),
            Pc::SetF => Footprint::Write(DESC_THIEF + 1),
            Pc::SetR => Footprint::Write(DESC_THIEF + 2),
            Pc::Shrink => Footprint::Write(DESC_OWNER + 2),
            Pc::Probe if (self.mid as usize) >= slots_len(self.q as usize) => Footprint::Internal,
            Pc::Probe => Footprint::Read(slot_addr(self.q as usize, self.mid as usize)),
            Pc::WalkLoad if (self.f as usize) >= slots_len(self.q as usize) => Footprint::Internal,
            Pc::WalkLoad => Footprint::Read(slot_addr(self.q as usize, self.f as usize)),
            Pc::StaleCheck => Footprint::Read(REAR0 + self.q as usize),
            Pc::WalkClear => Footprint::Write(slot_addr(self.q as usize, self.f as usize)),
            Pc::StoreF => Footprint::Write(self.my_desc() + 1),
            Pc::RetargetQ => Footprint::Write(DESC_OWNER),
            Pc::RetargetF => Footprint::Write(DESC_OWNER + 1),
            Pc::RetargetR => Footprint::Write(DESC_OWNER + 2),
            Pc::Done => Footprint::Internal,
        }
    }

    fn step(&mut self, tid: usize, mem: &mut VirtualMemory) -> Result<(), String> {
        match self.pc {
            Pc::LoadQ => {
                self.q = mem.load(tid, DESC_OWNER);
                self.pc = Pc::LoadF;
            }
            Pc::LoadF => {
                self.f = mem.load(tid, DESC_OWNER + 1);
                self.pc = Pc::LoadR;
            }
            Pc::LoadR => {
                self.r = mem.load(tid, DESC_OWNER + 2);
                self.pc = Pc::Check;
            }
            Pc::Check => {
                if self.f >= self.r {
                    self.fails.0 += 1;
                    self.steal_fail();
                } else if self.q as usize >= NQ {
                    // `q >= st.threads` — short-circuits the rear load.
                    self.fails.1 += 1;
                    self.steal_fail();
                } else {
                    self.pc = Pc::LoadRear;
                }
            }
            Pc::LoadRear => {
                self.rear = mem.load(tid, REAR0 + self.q as usize);
                if self.r > self.rear {
                    if self.weakened {
                        // The mixed-snapshot check is gone and a torn
                        // snapshot is about to be stolen from.
                        return Err(format!(
                            "accepted a torn steal snapshot (q'={}, f'={}, r'={}) with \
                             r' > rear[q']={} (the snapshot sanity check would have \
                             rejected it)",
                            self.q, self.f, self.r, self.rear
                        ));
                    }
                    self.fails.1 += 1;
                    self.steal_fail();
                } else {
                    self.mid = self.f + (self.r - self.f) / 2;
                    self.pc = Pc::SetQ;
                }
            }
            Pc::SetQ => {
                mem.store(tid, DESC_THIEF, self.q);
                self.pc = Pc::SetF;
            }
            Pc::SetF => {
                mem.store(tid, DESC_THIEF + 1, self.mid);
                self.pc = Pc::SetR;
            }
            Pc::SetR => {
                mem.store(tid, DESC_THIEF + 2, self.r);
                self.pc = Pc::Shrink;
            }
            Pc::Shrink => {
                mem.store(tid, DESC_OWNER + 2, self.mid);
                self.pc = Pc::Probe;
            }
            Pc::Probe => {
                if (self.mid as usize) >= slots_len(self.q as usize) {
                    // The real code would index out of bounds here; only
                    // reachable if an invalid snapshot were accepted.
                    return Err(format!(
                        "steal probe out of bounds: slot {} of queue {} (len {})",
                        self.mid,
                        self.q,
                        slots_len(self.q as usize)
                    ));
                }
                let v = mem.load(tid, slot_addr(self.q as usize, self.mid as usize));
                if v == 0 {
                    self.fails.2 += 1;
                    self.steal_fail();
                } else {
                    self.f = self.mid;
                    self.pc = Pc::WalkLoad;
                }
            }
            Pc::WalkLoad => {
                if (self.f as usize) >= slots_len(self.q as usize) {
                    // take_slot's capacity guard.
                    self.walk_end();
                } else {
                    let v = mem.load(tid, slot_addr(self.q as usize, self.f as usize));
                    if v == 0 {
                        self.pc = Pc::StaleCheck;
                    } else {
                        self.pending = v;
                        self.pc = Pc::WalkClear;
                    }
                }
            }
            Pc::StaleCheck => {
                let rear = mem.load(tid, REAR0 + self.q as usize);
                if self.f < rear {
                    self.stale_aborts += 1;
                }
                self.walk_end();
            }
            Pc::WalkClear => {
                mem.store(tid, slot_addr(self.q as usize, self.f as usize), 0);
                self.takes.push((self.q as usize, self.f as usize, self.pending));
                self.f += 1;
                self.pc = Pc::StoreF;
            }
            Pc::StoreF => {
                mem.store(tid, self.my_desc() + 1, self.f);
                self.pc = Pc::WalkLoad;
            }
            Pc::RetargetQ => {
                mem.store(tid, DESC_OWNER, 1);
                self.pc = Pc::RetargetF;
            }
            Pc::RetargetF => {
                mem.store(tid, DESC_OWNER + 1, 0);
                self.pc = Pc::RetargetR;
            }
            Pc::RetargetR => {
                mem.store(tid, DESC_OWNER + 2, REARS[1]);
                self.q = 1;
                self.f = 0;
                self.retargeted = true;
                self.pc = Pc::WalkLoad;
            }
            Pc::Done => {}
        }
        Ok(())
    }
}

/// Initial system: owner mid-level on queue 0 (`desc = (0, 0, 1)`),
/// thief probing; queue 1 full behind it.
#[allow(clippy::needless_range_loop)] // k, i are model memory addresses
pub fn system(weakened: bool) -> System<Agent> {
    let mut mem = VirtualMemory::new(P, words(), true);
    for k in 0..NQ {
        mem.init(REAR0 + k, REARS[k]);
        for i in 0..REARS[k] as usize {
            mem.init(slot_addr(k, i), 31 + (k * 8 + i) as u32);
        }
    }
    mem.init(DESC_OWNER + 2, REARS[0]); // owner descriptor (0, 0, rear0)
    System::new(
        mem,
        vec![Agent::new(Role::Owner, weakened), Agent::new(Role::Thief, weakened)],
    )
}

/// Terminal invariants: coverage and bounded duplicates over both queues.
#[allow(clippy::needless_range_loop)] // k, i are model memory addresses
pub fn check_final(sys: &System<Agent>) -> Result<(), String> {
    let mut taken = [[0u32; 4]; NQ];
    for t in &sys.threads {
        for &(k, i, v) in &t.takes {
            if v == 0 {
                return Err(format!("thread explored the sentinel value 0 at queue {k} slot {i}"));
            }
            taken[k][i] += 1;
        }
    }
    for k in 0..NQ {
        for i in 0..REARS[k] as usize {
            if sys.mem.committed(slot_addr(k, i)) != 0 {
                return Err(format!("slot {i} of queue {k} never consumed (coverage violation)"));
            }
            if taken[k][i] == 0 {
                return Err(format!("slot {i} of queue {k} zeroed but never explored"));
            }
            if taken[k][i] > P as u32 {
                return Err(format!(
                    "slot {i} of queue {k} explored {}x > P={P} (duplicate bound violation)",
                    taken[k][i]
                ));
            }
        }
    }
    Ok(())
}

/// Explore the core. `weakened` deletes the `r' <= rear[q']` check.
pub fn check(weakened: bool, bounds: Explorer) -> Outcome {
    bounds.explore(&system(weakened), check_final)
}
