//! Model of the zero-on-read segment walk with stale abort
//! (`take_slot` + the walk loops in `consume_pool_lockfree` /
//! `walk_sentinel`), paper §IV-A.2/§IV-B.
//!
//! Two threads co-walk the *same* segment `[0, rear)` of one queue —
//! the situation racy dispatch produces when a front cursor is dragged
//! backwards and a segment is replayed. Each thread runs the real
//! walk's racy-op order, one access per step:
//!
//! ```text
//! load rear -> live_end                     (LiveEnd)
//! for i in 0..rear {
//!   load slot[i]                            (WalkLoad)
//!   if 0 { stale abort if i < live_end; stop }
//!   store slot[i] = 0; explore              (WalkClear)
//! }
//! ```
//!
//! The zero-on-read protocol makes replays benign: the first walker to
//! *read* a slot live clears it and explores it; a co-walker that reads
//! the cleared slot aborts its walk. The **weakened** variant deletes
//! the sentinel stop: reading 0 "decodes" the empty-slot value as a
//! vertex — the model flags it the moment it happens, which is only
//! reachable when the other thread's clear has become visible
//! mid-segment (a genuine race, not a serial bug).
//!
//! Instance: 2 threads, one queue with rear = 4 — small enough that the
//! explorer covers the *entire* pruned schedule space (the outcome
//! reports `complete`), so the invariants hold unconditionally within
//! the model, not just up to a schedule budget.

use obfs_sync::model::{Explorer, Footprint, ModelThread, Outcome, System, VirtualMemory};

/// Threads co-walking the segment.
pub const P: usize = 2;
/// Live slots in the shared segment.
pub const REAR: u32 = 4;

/// Word address of the queue's rear cursor.
pub const REAR_ADDR: usize = 0;
/// Word address of slot `i`.
pub fn slot_addr(i: usize) -> usize {
    1 + i
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pc {
    LiveEnd,
    WalkLoad,
    WalkClear,
    Done,
}

/// One segment walker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Walker {
    weakened: bool,
    pc: Pc,
    i: u32,
    live_end: u32,
    pending: u32,
    /// (slot, value) taken by this thread, in order.
    pub takes: Vec<(usize, u32)>,
    /// Mid-segment cleared-slot aborts observed.
    pub stale_aborts: u32,
}

impl Walker {
    fn new(weakened: bool) -> Self {
        Self {
            weakened,
            pc: Pc::LiveEnd,
            i: 0,
            live_end: 0,
            pending: 0,
            takes: Vec::new(),
            stale_aborts: 0,
        }
    }
}

impl ModelThread for Walker {
    fn done(&self) -> bool {
        self.pc == Pc::Done
    }

    fn footprint(&self, _mem: &VirtualMemory) -> Footprint {
        match self.pc {
            Pc::LiveEnd => Footprint::Read(REAR_ADDR),
            Pc::WalkLoad => Footprint::Read(slot_addr(self.i as usize)),
            Pc::WalkClear => Footprint::Write(slot_addr(self.i as usize)),
            Pc::Done => Footprint::Internal,
        }
    }

    fn step(&mut self, tid: usize, mem: &mut VirtualMemory) -> Result<(), String> {
        match self.pc {
            Pc::LiveEnd => {
                self.live_end = mem.load(tid, REAR_ADDR);
                self.pc = Pc::WalkLoad;
            }
            Pc::WalkLoad => {
                let v = mem.load(tid, slot_addr(self.i as usize));
                if v == 0 {
                    if self.weakened {
                        // The sentinel stop is gone: decode(0) would
                        // "explore" a vertex that was already consumed.
                        return Err(format!(
                            "decoded the empty-slot sentinel at slot {}: vertex already \
                             consumed by the co-walker (zero-on-read stale abort deleted)",
                            self.i
                        ));
                    }
                    if self.i < self.live_end {
                        self.stale_aborts += 1;
                    }
                    self.pc = Pc::Done;
                } else {
                    self.pending = v;
                    self.pc = Pc::WalkClear;
                }
            }
            Pc::WalkClear => {
                mem.store(tid, slot_addr(self.i as usize), 0);
                self.takes.push((self.i as usize, self.pending));
                self.i += 1;
                self.pc = if self.i >= REAR { Pc::Done } else { Pc::WalkLoad };
            }
            Pc::Done => {}
        }
        Ok(())
    }
}

/// Initial system: slots `[21, 22, 23, 24]`, both walkers at slot 0.
pub fn system(weakened: bool) -> System<Walker> {
    let mut mem = VirtualMemory::new(P, 1 + REAR as usize, true);
    mem.init(REAR_ADDR, REAR);
    for i in 0..REAR as usize {
        mem.init(slot_addr(i), 21 + i as u32);
    }
    System::new(mem, vec![Walker::new(weakened); P])
}

/// Terminal invariants: coverage and bounded duplicates.
pub fn check_final(sys: &System<Walker>) -> Result<(), String> {
    let mut taken = [0u32; REAR as usize];
    for t in &sys.threads {
        for &(i, v) in &t.takes {
            if v == 0 {
                return Err(format!("thread explored the sentinel value 0 at slot {i}"));
            }
            taken[i] += 1;
        }
    }
    for (i, &n) in taken.iter().enumerate() {
        if sys.mem.committed(slot_addr(i)) != 0 {
            return Err(format!("slot {i} never consumed (coverage violation)"));
        }
        if n == 0 {
            return Err(format!("slot {i} zeroed but never explored"));
        }
        if n > P as u32 {
            return Err(format!("slot {i} explored {n}x > P={P} (duplicate bound violation)"));
        }
    }
    Ok(())
}

/// Explore the core. `weakened` deletes the sentinel stop.
pub fn check(weakened: bool, bounds: Explorer) -> Outcome {
    bounds.explore(&system(weakened), check_final)
}
