//! Model of the batched multi-source discovery core
//! (`RunState::try_discover_batch`), DESIGN.md §11.
//!
//! One shared vertex `w` in a 2-query batch. Two level-1 discoverers
//! race to OR their query's bit into `w`'s membership word and claim
//! their per-query level slot; a third thread re-discovers `w` for
//! query 0 at level 2 (its query-0 frontier path reaches `w` again).
//! Each thread runs the real kernel's racy-op order, one access per
//! step:
//!
//! ```text
//! load visited_by[w] -> vis; news = fbits & !vis   (LoadVis)
//! if news != 0:
//!   load levels[w,q]                               (LoadSlot)
//!   if UNSET { store levels[w,q] = next }          (StoreSlot)
//!   store visited_by[w] = vis | news               (StoreVis)
//!   if claimed:
//!     load pushed_at[w]                            (LoadPushed)
//!     if != next { store pushed_at[w] = next }     (StorePushed)
//! ```
//!
//! The membership word is written with plain racy ORs, so concurrent
//! discoverers can *lose bits* (both load `vis = 0`, the second commit
//! erases the first's bit). The protocol survives because the word is
//! only a strict under-approximation: every apparently-new bit is
//! **revalidated against the per-query level slot** before claiming,
//! and the level-1 claim is barrier-published before any level-2
//! worker runs. The **weakened** variant deletes that revalidation:
//! the late claimant acts on the lost bit and overwrites query 0's
//! already-claimed slot with a later level — the model flags it at the
//! exact step the deleted check would have rejected.
//!
//! The level barrier between the two levels is modeled by per-seed
//! flag words: a seed's flag store is its *last* program-order store,
//! so under TSO's FIFO buffers the late thread observing both flags
//! implies every earlier seed store has committed — the same release
//! ordering the real barrier provides. A late thread that does not
//! observe both flags gives up without attempting (keeping every
//! bounded execution terminating); the explorer still reaches the
//! post-barrier interleavings that matter.
//!
//! Instance: 3 threads, queries {0, 1}, one shared vertex.

use obfs_sync::model::{Explorer, Footprint, ModelThread, Outcome, System, VirtualMemory};

/// Threads: two level-1 seeds + one level-2 late claimant.
pub const P: usize = 3;
/// Unclaimed level-slot sentinel (stands in for `UNVISITED`).
pub const UNSET: u32 = 0;
/// "Never pushed" sentinel for the pushed-at word (distinct from every
/// level used by the instance).
pub const NEVER: u32 = 99;

/// Word address of `w`'s membership word (`visited_by[w]`).
pub const VISITED: usize = 0;
/// Word address of query `q`'s level slot for `w` (`levels[w*k + q]`).
pub fn slot_addr(q: usize) -> usize {
    1 + q
}
/// Word address of `w`'s pushed-at word (`pushed_at[w]`).
pub const PUSHED: usize = 3;
/// Word address of seed `q`'s barrier flag.
pub fn flag_addr(q: usize) -> usize {
    4 + q
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pc {
    /// Late only: observe the level-1 barrier flags (give up on 0).
    Flag(usize),
    LoadVis,
    LoadSlot,
    StoreSlot,
    StoreVis,
    LoadPushed,
    StorePushed,
    StoreFlag,
    Done,
}

/// One discoverer calling the batch kernel on `w`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Discoverer {
    weakened: bool,
    /// Query bit this thread discovers `w` for.
    q: usize,
    /// Level it would claim (`next_level`).
    next: u32,
    /// Level-2 late claimant (waits on the barrier flags, has no flag
    /// of its own).
    late: bool,
    pc: Pc,
    vis: u32,
    slot: u32,
    /// Did this thread win its slot claim?
    pub claimed: bool,
    /// Did this thread attempt discovery (late threads give up when
    /// the barrier flags are not yet visible)?
    pub attempted: bool,
}

impl Discoverer {
    fn seed(weakened: bool, q: usize) -> Self {
        Self {
            weakened,
            q,
            next: 1,
            late: false,
            pc: Pc::LoadVis,
            vis: 0,
            slot: 0,
            claimed: false,
            attempted: true,
        }
    }

    fn late(weakened: bool) -> Self {
        Self {
            weakened,
            q: 0,
            next: 2,
            late: true,
            pc: Pc::Flag(0),
            vis: 0,
            slot: 0,
            claimed: false,
            attempted: false,
        }
    }
}

impl ModelThread for Discoverer {
    fn done(&self) -> bool {
        self.pc == Pc::Done
    }

    fn footprint(&self, _mem: &VirtualMemory) -> Footprint {
        match self.pc {
            Pc::Flag(q) => Footprint::Read(flag_addr(q)),
            Pc::LoadVis => Footprint::Read(VISITED),
            Pc::LoadSlot => Footprint::Read(slot_addr(self.q)),
            Pc::StoreSlot => Footprint::Write(slot_addr(self.q)),
            Pc::StoreVis => Footprint::Write(VISITED),
            Pc::LoadPushed => Footprint::Read(PUSHED),
            Pc::StorePushed => Footprint::Write(PUSHED),
            Pc::StoreFlag => Footprint::Write(flag_addr(self.q)),
            Pc::Done => Footprint::Internal,
        }
    }

    fn step(&mut self, tid: usize, mem: &mut VirtualMemory) -> Result<(), String> {
        match self.pc {
            Pc::Flag(q) => {
                // Bounded barrier wait: proceed only if this seed's
                // flag is already visible, otherwise give up (the
                // explorer covers the post-barrier schedules anyway).
                if mem.load(tid, flag_addr(q)) == 0 {
                    self.pc = Pc::Done;
                } else if q + 1 < P - 1 {
                    self.pc = Pc::Flag(q + 1);
                } else {
                    self.attempted = true;
                    self.pc = Pc::LoadVis;
                }
            }
            Pc::LoadVis => {
                self.vis = mem.load(tid, VISITED);
                let news = (1 << self.q) & !self.vis;
                self.pc = if news == 0 {
                    // Bit already visible: nothing new to record. (Only
                    // the late thread can observe this.)
                    Pc::Done
                } else {
                    Pc::LoadSlot
                };
            }
            Pc::LoadSlot => {
                self.slot = mem.load(tid, slot_addr(self.q));
                if self.slot == UNSET {
                    self.pc = Pc::StoreSlot;
                } else if self.weakened {
                    // The revalidation is gone: the kernel would act on
                    // the lost membership bit and overwrite a claimed
                    // slot with a later level.
                    return Err(format!(
                        "overwrote query-{} level slot ({} -> {}): lost membership OR made \
                         the vertex look undiscovered (level-slot revalidation deleted)",
                        self.q, self.slot, self.next
                    ));
                } else {
                    // Revalidation rejects: the slot was claimed by a
                    // barrier-published earlier discovery; only record
                    // the membership bit.
                    self.pc = Pc::StoreVis;
                }
            }
            Pc::StoreSlot => {
                mem.store(tid, slot_addr(self.q), self.next);
                self.claimed = true;
                self.pc = Pc::StoreVis;
            }
            Pc::StoreVis => {
                mem.store(tid, VISITED, self.vis | (1 << self.q));
                self.pc = if self.claimed { Pc::LoadPushed } else { Pc::Done };
            }
            Pc::LoadPushed => {
                let pushed = mem.load(tid, PUSHED);
                self.pc = if pushed == self.next {
                    // Another claimant of this level already pushed w;
                    // the late claims ride that push.
                    if self.late { Pc::Done } else { Pc::StoreFlag }
                } else {
                    Pc::StorePushed
                };
            }
            Pc::StorePushed => {
                mem.store(tid, PUSHED, self.next);
                self.pc = if self.late { Pc::Done } else { Pc::StoreFlag };
            }
            Pc::StoreFlag => {
                // Program-order-last store: under TSO FIFO flush, a
                // thread observing this flag observes every store
                // above — the model's stand-in for the level barrier.
                mem.store(tid, flag_addr(self.q), 1);
                self.pc = Pc::Done;
            }
            Pc::Done => {}
        }
        Ok(())
    }
}

/// Initial system: membership word empty, both slots unclaimed, `w`
/// never pushed, barrier flags down.
pub fn system(weakened: bool) -> System<Discoverer> {
    let mut mem = VirtualMemory::new(P, 6, true);
    mem.init(VISITED, 0);
    mem.init(slot_addr(0), UNSET);
    mem.init(slot_addr(1), UNSET);
    mem.init(PUSHED, NEVER);
    mem.init(flag_addr(0), 0);
    mem.init(flag_addr(1), 0);
    System::new(
        mem,
        vec![
            Discoverer::seed(weakened, 0),
            Discoverer::seed(weakened, 1),
            Discoverer::late(weakened),
        ],
    )
}

/// Terminal invariants: first-claim wins and membership bits stay a
/// strict under-approximation of the claimed slots.
pub fn check_final(sys: &System<Discoverer>) -> Result<(), String> {
    // Every level-1 seed claims its own slot (nothing else can hold it
    // before the barrier), and the slot keeps the first-claim level
    // forever: a late claimant must never overwrite it.
    for q in 0..2 {
        let slot = sys.mem.committed(slot_addr(q));
        if slot != 1 {
            return Err(format!(
                "query-{q} level slot ended {slot}, expected the level-1 claim \
                 (first-set-bit claim not sticky)"
            ));
        }
    }
    // Membership bits under-approximate discovery: a set bit whose
    // level slot is unclaimed would be a vertex lost to that query.
    let vis = sys.mem.committed(VISITED);
    for q in 0..2 {
        if vis & (1 << q) != 0 && sys.mem.committed(slot_addr(q)) == UNSET {
            return Err(format!(
                "membership bit {q} set but query-{q} level slot unclaimed \
                 (vertex lost to query {q})"
            ));
        }
    }
    // The late claimant must never win: the slot it races for was
    // claimed strictly before the barrier flags it waited on.
    if sys.threads[P - 1].claimed {
        return Err("late claimant won a slot that was barrier-published as claimed".into());
    }
    Ok(())
}

/// Explore the core. `weakened` deletes the level-slot revalidation.
pub fn check(weakened: bool, bounds: Explorer) -> Outcome {
    bounds.explore(&system(weakened), check_final)
}
