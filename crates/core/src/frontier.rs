//! Frontier queues: the paper's "very simple array-based data structures".
//!
//! A [`FrontierQueue`] is a fixed-capacity array of racy `u32` slots plus
//! racy `front`/`rear` cursors. Vertices are stored **biased by one**
//! (`v + 1`) so that `0` can serve as the paper's sentinel: a `0` slot
//! means "past the end of the queue, or already consumed by some thread".
//! The array is sized `n + 1`, so the slot at index `rear` always exists
//! and always reads 0 — consumers that walk by sentinel never need a
//! bounds branch against `rear`.
//!
//! Ownership protocol per BFS level:
//! * As an **output** queue, a single thread pushes to it (no races).
//! * As an **input** queue, any thread may read/clear slots and update
//!   `front` racily — that is the optimistic part of the paper.
//! * `rear` is fixed while the queue is an input queue (set by its owner
//!   during the previous level and only reset at the swap barrier).

use crate::UNVISITED;
use obfs_graph::VertexId;
use obfs_sync::{CachePadded, RacyBuf, RacyUsize};

/// Sentinel stored in empty/consumed slots.
pub const EMPTY_SLOT: u32 = 0;

/// Encode a vertex for queue storage (`v + 1`).
#[inline]
pub fn encode(v: VertexId) -> u32 {
    debug_assert!(v != UNVISITED, "cannot encode the UNVISITED marker");
    v + 1
}

/// Decode a non-empty slot back to a vertex id.
#[inline]
pub fn decode(slot: u32) -> VertexId {
    debug_assert_ne!(slot, EMPTY_SLOT);
    slot - 1
}

/// One per-thread frontier queue.
pub struct FrontierQueue {
    slots: RacyBuf,
    front: CachePadded<RacyUsize>,
    rear: CachePadded<RacyUsize>,
}

impl FrontierQueue {
    /// Queue able to hold `capacity` vertices (allocates `capacity + 1`
    /// slots so index `rear` is always a readable sentinel).
    pub fn new(capacity: usize) -> Self {
        Self {
            slots: RacyBuf::new(capacity + 1),
            front: CachePadded::new(RacyUsize::new(0)),
            rear: CachePadded::new(RacyUsize::new(0)),
        }
    }

    /// Maximum number of vertices the queue can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len() - 1
    }

    /// Racy read of slot `i` (0 = empty/consumed).
    #[inline]
    pub fn slot(&self, i: usize) -> u32 {
        self.slots.get(i)
    }

    /// Racy clear of slot `i` (the zero-on-read protocol).
    #[inline]
    pub fn clear_slot(&self, i: usize) {
        self.slots.set(i, EMPTY_SLOT);
    }

    /// Racy cursor reads/writes.
    #[inline]
    pub fn front(&self) -> usize {
        self.front.load()
    }
    /// Racy store of the front cursor.
    #[inline]
    pub fn set_front(&self, v: usize) {
        self.front.store(v);
    }
    /// Racy load of the rear cursor.
    #[inline]
    pub fn rear(&self) -> usize {
        self.rear.load()
    }
    /// Racy store of the rear cursor.
    #[inline]
    pub fn set_rear(&self, v: usize) {
        self.rear.store(v);
    }

    /// Owner-side push; `local_rear` is the owner's cached cursor (kept
    /// outside the queue so the hot loop does not reload shared memory).
    /// Publishes the new rear with a racy store.
    #[inline]
    pub fn push(&self, local_rear: &mut usize, v: VertexId) {
        debug_assert!(*local_rear < self.capacity(), "output queue overflow");
        self.slots.set(*local_rear, encode(v));
        *local_rear += 1;
        self.rear.store(*local_rear);
    }

    /// Reset to empty for reuse as an output queue: clears the previously
    /// used slot range and both cursors. Single-threaded per queue (each
    /// owner resets its own queue at the level barrier).
    pub fn reset(&self) {
        let used = self.rear.load().min(self.capacity());
        for i in 0..used {
            self.slots.set(i, EMPTY_SLOT);
        }
        self.front.store(0);
        self.rear.store(0);
    }

    /// Test/diagnostic helper: current live contents (decoded, in slot
    /// order, skipping cleared slots).
    pub fn snapshot_vertices(&self) -> Vec<VertexId> {
        (0..self.rear.load().min(self.capacity()))
            .filter_map(|i| {
                let s = self.slots.get(i);
                (s != EMPTY_SLOT).then(|| decode(s))
            })
            .collect()
    }
}

/// Bit-per-vertex frontier for the hybrid's bottom-up levels, stored in
/// racy `u32` words so it lives under the same optimistic memory model
/// (and chaos interception) as every other shared structure.
///
/// Ownership protocol per bottom-up level: the driver statically
/// partitions the word range across workers, each worker **rebuilds only
/// its own words** from the shared `level[]` array (single writer per
/// word, no read-modify-write needed), and a level barrier separates the
/// fill from the probes — so reads during the bottom-up scan race with
/// nothing.
pub struct FrontierBitmap {
    words: RacyBuf,
    len: usize,
}

/// Bits per bitmap word.
pub const BITMAP_WORD_BITS: usize = 32;

impl FrontierBitmap {
    /// Bitmap covering `len` vertices.
    pub fn new(len: usize) -> Self {
        Self { words: RacyBuf::new(len.div_ceil(BITMAP_WORD_BITS).max(1)), len }
    }

    /// Number of vertices covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of `u32` words backing the bitmap.
    #[inline]
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Racy test of vertex `v`'s bit.
    #[inline]
    pub fn test(&self, v: usize) -> bool {
        debug_assert!(v < self.len);
        self.words.get(v / BITMAP_WORD_BITS) >> (v % BITMAP_WORD_BITS) & 1 == 1
    }

    /// Store a whole word (the single-writer fill path).
    #[inline]
    pub fn set_word(&self, wi: usize, bits: u32) {
        self.words.set(wi, bits);
    }

    /// Racy read of a whole word.
    #[inline]
    pub fn word(&self, wi: usize) -> u32 {
        self.words.get(wi)
    }

    /// Test/diagnostic helper: the set bits as vertex ids, ascending.
    pub fn snapshot_ones(&self) -> Vec<usize> {
        (0..self.len).filter(|&v| self.test(v)).collect()
    }
}

/// The `Qin[p]` / `Qout[p]` array of queues.
pub struct QueueSet {
    queues: Vec<FrontierQueue>,
}

impl QueueSet {
    /// One queue per thread, each of the given capacity.
    pub fn new(threads: usize, capacity: usize) -> Self {
        Self { queues: (0..threads).map(|_| FrontierQueue::new(capacity)).collect() }
    }

    /// Number of queues (= worker count).
    #[inline]
    pub fn len(&self) -> usize {
        self.queues.len()
    }

    /// True when the set holds no queues.
    pub fn is_empty(&self) -> bool {
        self.queues.is_empty()
    }

    /// The `i`-th queue.
    #[inline]
    pub fn queue(&self, i: usize) -> &FrontierQueue {
        &self.queues[i]
    }

    /// Sum of rears — the frontier size if no duplicates were pushed.
    pub fn total_entries(&self) -> usize {
        self.queues.iter().map(|q| q.rear()).sum()
    }
}

/// Shared per-thread segment descriptor for the work-stealing variants:
/// `(q, f, r)` — queue id, front, rear of the segment the thread is
/// working on. Thieves read all three and write `r` (lock-free) under the
/// optimistic protocol; the owner advances `f` as it consumes.
pub struct SegmentDesc {
    /// Queue id of the segment.
    pub q: RacyUsize,
    /// Front cursor (owner-advanced).
    pub f: RacyUsize,
    /// Rear bound (thief-shrunk).
    pub r: RacyUsize,
}

impl SegmentDesc {
    /// An all-zero (empty) descriptor.
    pub fn new() -> Self {
        Self { q: RacyUsize::new(0), f: RacyUsize::new(0), r: RacyUsize::new(0) }
    }

    /// Owner-side (re)initialization at level start.
    pub fn set(&self, q: usize, f: usize, r: usize) {
        self.q.store(q);
        self.f.store(f);
        self.r.store(r);
    }

    /// Racy snapshot `(q, f, r)` — the thief's first step. The three
    /// loads are not atomic as a group; the caller must sanity-check.
    ///
    /// This is the one place where the `chaos` backend may *fabricate*
    /// index values (not just replay stale ones): the caller's
    /// `f' < r' ≤ Qin[q'].rear` sanity check is exactly what the paper
    /// relies on to survive a torn snapshot, so an adversarially skewed
    /// `r` exercises it without breaking the no-gap invariant of the
    /// centralized dispatchers (which never see skew). No-op without the
    /// feature or an installed plan.
    pub fn snapshot(&self) -> (usize, usize, usize) {
        (self.q.load(), self.f.load(), obfs_sync::chaos::skew_index(self.r.load()))
    }
}

impl Default for SegmentDesc {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for v in [0u32, 1, 7, u32::MAX - 1] {
            assert_eq!(decode(encode(v)), v);
        }
        assert_ne!(encode(0), EMPTY_SLOT, "vertex 0 must not collide with the sentinel");
    }

    #[test]
    fn push_and_snapshot() {
        let q = FrontierQueue::new(8);
        let mut rear = 0usize;
        q.push(&mut rear, 5);
        q.push(&mut rear, 0);
        q.push(&mut rear, 7);
        assert_eq!(rear, 3);
        assert_eq!(q.rear(), 3);
        assert_eq!(q.snapshot_vertices(), vec![5, 0, 7]);
    }

    #[test]
    fn sentinel_beyond_rear() {
        let q = FrontierQueue::new(4);
        let mut rear = 0usize;
        q.push(&mut rear, 1);
        // The slot at index `rear` must read as the sentinel even when the
        // queue is full.
        assert_eq!(q.slot(rear), EMPTY_SLOT);
        q.push(&mut rear, 2);
        q.push(&mut rear, 3);
        q.push(&mut rear, 4);
        assert_eq!(rear, 4);
        assert_eq!(q.slot(4), EMPTY_SLOT);
    }

    #[test]
    fn clear_then_walk_stops() {
        let q = FrontierQueue::new(4);
        let mut rear = 0usize;
        for v in [10, 11, 12] {
            q.push(&mut rear, v);
        }
        q.clear_slot(1);
        // A consumer walking from 0 reads 10, then hits the cleared slot.
        assert_ne!(q.slot(0), EMPTY_SLOT);
        assert_eq!(q.slot(1), EMPTY_SLOT);
    }

    #[test]
    fn reset_clears_used_range_and_cursors() {
        let q = FrontierQueue::new(6);
        let mut rear = 0usize;
        for v in 0..5 {
            q.push(&mut rear, v);
        }
        q.set_front(3);
        q.reset();
        assert_eq!(q.front(), 0);
        assert_eq!(q.rear(), 0);
        for i in 0..=q.capacity() {
            assert_eq!(q.slot(i), EMPTY_SLOT, "slot {i} not cleared");
        }
    }

    #[test]
    fn queue_set_totals() {
        let qs = QueueSet::new(3, 10);
        assert_eq!(qs.len(), 3);
        assert_eq!(qs.total_entries(), 0);
        let mut r0 = 0;
        qs.queue(0).push(&mut r0, 4);
        let mut r2 = 0;
        qs.queue(2).push(&mut r2, 9);
        qs.queue(2).push(&mut r2, 1);
        assert_eq!(qs.total_entries(), 3);
    }

    #[test]
    fn bitmap_words_and_bits() {
        let b = FrontierBitmap::new(70);
        assert_eq!(b.len(), 70);
        assert_eq!(b.word_count(), 3);
        b.set_word(0, 1 << 5 | 1); // vertices 0 and 5
        b.set_word(2, 1 << 3); // vertex 67
        assert!(b.test(0) && b.test(5) && b.test(67));
        assert!(!b.test(1) && !b.test(64));
        assert_eq!(b.snapshot_ones(), vec![0, 5, 67]);
        b.set_word(0, 0);
        assert_eq!(b.snapshot_ones(), vec![67]);
    }

    #[test]
    fn bitmap_handles_tiny_and_exact_sizes() {
        let b = FrontierBitmap::new(1);
        assert_eq!(b.word_count(), 1);
        b.set_word(0, 1);
        assert!(b.test(0));
        let b = FrontierBitmap::new(64);
        assert_eq!(b.word_count(), 2);
    }

    #[test]
    fn segment_desc_roundtrip() {
        let d = SegmentDesc::new();
        d.set(2, 10, 20);
        assert_eq!(d.snapshot(), (2, 10, 20));
        d.r.store(15);
        assert_eq!(d.snapshot(), (2, 10, 15));
    }
}
