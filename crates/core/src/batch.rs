//! Batched bit-parallel multi-source BFS.
//!
//! One traversal answers up to [`MAX_BATCH`] = 64 source queries at once:
//! every vertex carries a `u64` *membership word* (`visited_by[v]`, bit
//! `q` set once query `q` has claimed `v`) plus a row of `k` per-query
//! level slots. The frontier of a level is the **union** of the per-query
//! frontiers, so dense traffic amortizes one pass over the CSR arrays
//! across the whole batch instead of queueing 64 passes.
//!
//! # Memory-model argument (the paper's §IV, verbatim on words)
//!
//! All batch state is written with plain racy stores, exactly like the
//! single-source `level[]` array:
//!
//! * **Per-query level slots** (`levels[v*k + q]`) are claimed with a
//!   check-then-store. Within one level every claimant writes the *same
//!   value* (`level + 1`), so racing duplicate claims are idempotent —
//!   the identical benign race as the paper's level writes. Slots for a
//!   popped frontier vertex are only read after the level barrier that
//!   published them, so frontier-bit derivation never sees a torn or
//!   in-flight row.
//! * **Membership words** (`visited_by[v]`) are OR-updated with
//!   `load; store(old | bits)` — no `fetch_or`. A racing OR can *lose*
//!   bits, so the word is treated strictly as an **under-approximation**
//!   used to skip work: every bit a worker acts on is revalidated
//!   against the per-query level slot before claiming. A lost OR merely
//!   means a later worker re-checks and re-claims the same (vertex,
//!   query) with the same value. At every level barrier the invariant
//!   `visited_by[v] ⊆ {q : levels[v*k+q] != UNVISITED}` holds, because a
//!   worker ORs a bit only after (in its program order) the bit's level
//!   slot was claimed by someone, and barriers quiesce store buffers.
//! * **Push dedup** (`pushed_at[v]`) stores the level at which `v` was
//!   last enqueued. A worker pushes `v` for level `l+1` only when it
//!   reads `pushed_at[v] != l+1` — stale reads cause bounded duplicate
//!   pushes (at most one per worker per level, so per-worker pushes stay
//!   within the `n`-slot queue capacity), never lost work: claims by
//!   late workers ride the earlier push, because frontier bits are
//!   re-derived from the level rows at pop time. Because the sentinel is
//!   the *level value* rather than a flag, nothing ever needs resetting —
//!   which is what keeps bottom-up levels and the watchdog's serial
//!   sweep correct without extra bookkeeping.
//!
//! The existing segment-fetch, work-steal, watchdog and cancellation
//! machinery is reused unchanged: batch mode only swaps the per-vertex
//! discovery kernel behind [`crate::RunState::explore_vertex`].

use crate::stats::RunStats;
use crate::{BfsResult, UNVISITED};
use obfs_graph::{CsrGraph, VertexId};
use obfs_sync::{RacyBuf, RacyBuf64};

/// Maximum number of sources per batched run (bits in the membership word).
pub const MAX_BATCH: usize = 64;

/// Shared batch-mode state hanging off [`crate::RunState`].
pub struct BatchState {
    /// Batch size (1..=64).
    pub k: usize,
    /// The query sources, in result order. Duplicates allowed.
    pub sources: Vec<VertexId>,
    /// `k` low bits set: the full-batch membership mask.
    pub mask: u64,
    /// Per-query level slots, row-major by vertex: `levels[v*k + q]`.
    /// Claimed with idempotent racy stores (same value within a level).
    pub levels: RacyBuf,
    /// Per-query parents, same layout (arbitrary concurrent write; any
    /// surviving value is a valid one-level-shallower BFS parent).
    pub parents: Option<RacyBuf>,
    /// Membership words: bit `q` set once query `q` claimed the vertex.
    /// Racy OR-updates; strictly an under-approximation (see module docs).
    pub visited_by: RacyBuf64,
    /// Level at which the vertex was last pushed to an output queue
    /// (`UNVISITED` = never). The batch push-dedup word.
    pub pushed_at: RacyBuf,
    /// Bottom-up frontier words, rebuilt per bottom-up level: bit `q` set
    /// iff the vertex is on query `q`'s current frontier. Single-writer
    /// per word (vertex-partitioned), allocated only for hybrid runs.
    pub front_by: Option<RacyBuf64>,
}

impl BatchState {
    /// Allocate batch state for `sources` over an `n`-vertex graph.
    pub fn new(n: usize, sources: &[VertexId], record_parents: bool, hybrid: bool) -> Self {
        let k = sources.len();
        assert!(
            (1..=MAX_BATCH).contains(&k),
            "batch size must be 1..={MAX_BATCH}, got {k}"
        );
        for &s in sources {
            assert!((s as usize) < n, "batch source {s} out of range (n = {n})");
        }
        let mask = if k == MAX_BATCH { u64::MAX } else { (1u64 << k) - 1 };
        Self {
            k,
            sources: sources.to_vec(),
            mask,
            levels: RacyBuf::new(n * k),
            parents: record_parents.then(|| RacyBuf::new(n * k)),
            visited_by: RacyBuf64::new(n),
            pushed_at: RacyBuf::new(n),
            front_by: hybrid.then(|| RacyBuf64::new(n)),
        }
    }
}

/// One query's slice of a [`BatchResult`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchQueryResult {
    /// The query's source vertex.
    pub source: VertexId,
    /// `levels[v]` = BFS distance from `source`, or [`UNVISITED`].
    pub levels: Vec<u32>,
    /// BFS-tree parents when requested ([`INVALID_VERTEX`] = none).
    pub parents: Option<Vec<VertexId>>,
}

impl BatchQueryResult {
    /// Number of vertices this query reached.
    pub fn reached(&self) -> usize {
        self.levels.iter().filter(|&&l| l != UNVISITED).count()
    }

    /// View this query as a standalone [`BfsResult`] (cloning the label
    /// arrays and the shared run stats), so the single-source validators
    /// — `check_levels`, `check_self_consistent`, `check_partial` — apply
    /// per query.
    pub fn as_bfs_result(&self, stats: &RunStats) -> BfsResult {
        BfsResult {
            levels: self.levels.clone(),
            parents: self.parents.clone(),
            stats: stats.clone(),
        }
    }

    /// Like [`BatchQueryResult::as_bfs_result`] but consuming: moves the
    /// label arrays instead of cloning them (the serving layer hands
    /// each coalesced query exactly one response, so the copy would be
    /// pure overhead at n × k scale).
    pub fn into_bfs_result(self, stats: &RunStats) -> BfsResult {
        BfsResult { levels: self.levels, parents: self.parents, stats: stats.clone() }
    }
}

/// Result of one batched multi-source run.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per-query results, in the order the sources were given.
    pub queries: Vec<BatchQueryResult>,
    /// Stats of the one shared traversal (levels = union-frontier levels
    /// executed; on cancellation the per-query partial-state contract of
    /// `check_partial` holds for every query individually).
    pub stats: RunStats,
}

impl BatchResult {
    /// Batch size.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the batch is empty (never produced by `run_batch`).
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

// lint:region control:batch-extract
/// Extract per-query results from a finished run's batch state.
pub(crate) fn extract_results(b: &BatchState, n: usize) -> Vec<BatchQueryResult> {
    // Row-major gather: one sequential pass over the packed label
    // arrays, scattering each vertex row into the k per-query columns.
    // The k destination cursors all advance sequentially, so the
    // transpose costs k + 1 streaming accesses — doing it column-wise
    // instead (k strided passes over the whole n×k array) is what the
    // naive per-query `collect` loop amounts to, and it dominated the
    // whole batched traversal on graphs past the cache sizes.
    let k = b.k;
    let mut levels: Vec<Vec<u32>> = (0..k).map(|_| Vec::with_capacity(n)).collect();
    let mut parents: Option<Vec<Vec<VertexId>>> =
        b.parents.as_ref().map(|_| (0..k).map(|_| Vec::with_capacity(n)).collect());
    for v in 0..n {
        let base = v * k;
        for (q, col) in levels.iter_mut().enumerate() {
            col.push(b.levels.get(base + q));
        }
        if let (Some(cols), Some(p)) = (parents.as_mut(), b.parents.as_ref()) {
            for (q, col) in cols.iter_mut().enumerate() {
                col.push(p.get(base + q));
            }
        }
    }
    let mut parents = parents.map(Vec::into_iter);
    levels
        .into_iter()
        .enumerate()
        .map(|(q, lv)| BatchQueryResult {
            source: b.sources[q],
            levels: lv,
            parents: parents.as_mut().map(|it| it.next().expect("k parent columns")),
        })
        .collect()
}
// lint:endregion

/// Run the batch serially: one [`crate::serial_bfs_with_opts`] pass per
/// query, stats merged. The ground-truth shape for the differential
/// matrix, and the `Algorithm::Serial` batch entry.
pub(crate) fn serial_batch(
    graph: &CsrGraph,
    sources: &[VertexId],
    opts: &crate::BfsOptions,
) -> BatchResult {
    let k = sources.len();
    assert!(
        (1..=MAX_BATCH).contains(&k),
        "batch size must be 1..={MAX_BATCH}, got {k}"
    );
    let mut queries = Vec::with_capacity(k);
    let mut stats: Option<RunStats> = None;
    for &s in sources {
        let r = crate::serial::serial_bfs_with_opts(graph, s, opts);
        queries.push(BatchQueryResult { source: s, levels: r.levels, parents: r.parents });
        stats = Some(match stats.take() {
            None => r.stats,
            Some(mut acc) => {
                acc.levels = acc.levels.max(r.stats.levels);
                acc.traversal_time += r.stats.traversal_time;
                acc.totals.merge(&r.stats.totals);
                acc
            }
        });
    }
    BatchResult { queries, stats: stats.expect("batch is non-empty") }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_covers_exactly_k_bits() {
        let b = BatchState::new(8, &[0, 1, 2], false, false);
        assert_eq!(b.mask, 0b111);
        assert_eq!(b.levels.len(), 24);
        assert!(b.parents.is_none());
        let full: Vec<VertexId> = (0..64).map(|i| i % 8).collect();
        let b = BatchState::new(8, &full, true, true);
        assert_eq!(b.mask, u64::MAX);
        assert!(b.front_by.is_some());
        assert_eq!(b.parents.as_ref().unwrap().len(), 8 * 64);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn oversized_batch_rejected() {
        let src: Vec<VertexId> = vec![0; 65];
        let _ = BatchState::new(4, &src, false, false);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_source_rejected() {
        let _ = BatchState::new(4, &[9], false, false);
    }
}
