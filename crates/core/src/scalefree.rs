//! Scale-free BFS variants (BFSWS / BFSWSL).
//!
//! The implementation lives in [`crate::worksteal::WorkStealing`] with
//! `scale_free: true` — phase 1 (low-degree exploration with stealing)
//! shares all of its machinery with BFSW/BFSWL, and keeping the two-phase
//! logic in one strategy avoids duplicating the steal protocol. This
//! module re-exports the configuration and documents the hub handling:
//!
//! * Phase 1 diverts vertices with degree above
//!   [`crate::BfsOptions::hub_threshold`] into per-thread hub lists
//!   instead of exploring them.
//! * At the phase barrier the leader flattens the hub lists (with degree
//!   prefix sums).
//! * Phase 2 explores each hub's adjacency list split into `p` chunks,
//!   one per thread — or, with [`crate::BfsOptions::phase2_steal`],
//!   via optimistic edge-range dispatch (the variant the paper found
//!   usually slower; kept for the ablation benches).

pub use crate::worksteal::WorkStealing;

/// Convenience constructor for BFSWS (locked, scale-free).
pub fn bfsws() -> WorkStealing {
    WorkStealing { locked: true, scale_free: true }
}

/// Convenience constructor for BFSWSL (lock-free, scale-free).
pub fn bfswsl() -> WorkStealing {
    WorkStealing { locked: false, scale_free: true }
}

#[cfg(test)]
mod tests {
    use crate::options::{Algorithm, BfsOptions};
    use crate::serial::serial_bfs;
    use crate::run_bfs;
    use obfs_graph::gen;

    /// The hub threshold boundary: degree == threshold stays in phase 1,
    /// degree > threshold goes to phase 2.
    #[test]
    fn threshold_boundary_exact() {
        // complete(9): every vertex has degree 8.
        let g = gen::complete(9);
        let ser = serial_bfs(&g, 0);
        for thr in [7, 8, 9] {
            let o = BfsOptions { threads: 3, hub_threshold: Some(thr), ..Default::default() };
            let r = run_bfs(Algorithm::Bfswsl, &g, 0, &o);
            assert_eq!(r.levels, ser.levels, "threshold {thr}");
        }
    }

    /// All vertices hubs: the entire traversal flows through phase 2.
    #[test]
    fn everything_is_a_hub() {
        let g = gen::erdos_renyi(300, 3000, 2);
        let ser = serial_bfs(&g, 0);
        let o = BfsOptions { threads: 4, hub_threshold: Some(0), ..Default::default() };
        for algo in [Algorithm::Bfsws, Algorithm::Bfswsl] {
            let r = run_bfs(algo, &g, 0, &o);
            assert_eq!(r.levels, ser.levels, "{algo}");
        }
    }

    /// No vertex is a hub: scale-free variants degenerate to plain
    /// work-stealing.
    #[test]
    fn nothing_is_a_hub() {
        let g = gen::erdos_renyi(300, 1500, 4);
        let ser = serial_bfs(&g, 7);
        let o = BfsOptions {
            threads: 4,
            hub_threshold: Some(usize::MAX),
            ..Default::default()
        };
        let r = run_bfs(Algorithm::Bfswsl, &g, 7, &o);
        assert_eq!(r.levels, ser.levels);
    }

    /// Chains of hubs: hub neighbours that are themselves hubs must be
    /// re-classified at the next level, not explored inline.
    #[test]
    fn hub_chains() {
        // Two stars joined at their hubs.
        let mut b = obfs_graph::GraphBuilder::new(202).symmetrize(true);
        for leaf in 2..102u32 {
            b.add_edge(0, leaf);
        }
        for leaf in 102..202u32 {
            b.add_edge(1, leaf);
        }
        b.add_edge(0, 1);
        let g = b.build();
        let ser = serial_bfs(&g, 5); // a leaf of hub 0
        let o = BfsOptions { threads: 4, hub_threshold: Some(10), ..Default::default() };
        for algo in [Algorithm::Bfsws, Algorithm::Bfswsl] {
            let r = run_bfs(algo, &g, 5, &o);
            assert_eq!(r.levels, ser.levels, "{algo}");
        }
    }

    #[test]
    fn constructors_expose_expected_flags() {
        let ws = super::bfsws();
        assert!(ws.locked && ws.scale_free);
        let wsl = super::bfswsl();
        assert!(!wsl.locked && wsl.scale_free);
    }
}
