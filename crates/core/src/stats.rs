//! Instrumentation counters.
//!
//! Every worker owns a [`ThreadStats`] (via
//! [`crate::perthread::PerThread`], so counting needs no synchronization);
//! the driver merges them into a [`RunStats`] after the run. The
//! [`StealCounters`] categories are exactly those of the paper's Table VI.

/// Outcome counters for steal attempts (work-stealing variants) — the
/// columns of Table VI.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealCounters {
    /// Total steal attempts.
    pub attempts: u64,
    /// Successful steals.
    pub success: u64,
    /// Failed: victim's lock was held (lock-based variants only).
    pub victim_locked: u64,
    /// Failed: victim had no work (empty or exhausted segment).
    pub victim_idle: u64,
    /// Failed: victim's remaining segment was below the steal minimum.
    pub too_small: u64,
    /// Failed: segment passed the sanity checks but was already consumed
    /// (first slot cleared) — lock-free variants only.
    pub stale: u64,
    /// Failed: segment failed the `f' < r' <= Qin[q'].r` sanity check —
    /// lock-free variants only.
    pub invalid: u64,
}

impl StealCounters {
    /// Field-wise accumulate.
    pub fn merge(&mut self, o: &StealCounters) {
        self.attempts += o.attempts;
        self.success += o.success;
        self.victim_locked += o.victim_locked;
        self.victim_idle += o.victim_idle;
        self.too_small += o.too_small;
        self.stale += o.stale;
        self.invalid += o.invalid;
    }

    /// Field-wise difference against an earlier snapshot of the same
    /// monotonically increasing counters.
    pub fn diff(&self, earlier: &StealCounters) -> StealCounters {
        StealCounters {
            attempts: self.attempts - earlier.attempts,
            success: self.success - earlier.success,
            victim_locked: self.victim_locked - earlier.victim_locked,
            victim_idle: self.victim_idle - earlier.victim_idle,
            too_small: self.too_small - earlier.too_small,
            stale: self.stale - earlier.stale,
            invalid: self.invalid - earlier.invalid,
        }
    }

    /// Total failed attempts.
    pub fn failed(&self) -> u64 {
        self.victim_locked + self.victim_idle + self.too_small + self.stale + self.invalid
    }

    /// Internal consistency: categorized outcomes must sum to attempts.
    pub fn is_consistent(&self) -> bool {
        self.success + self.failed() == self.attempts
    }
}

/// Per-worker counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadStats {
    /// Queue slots consumed that held a live vertex.
    pub vertices_explored: u64,
    /// Adjacency entries scanned.
    pub edges_scanned: u64,
    /// Vertices pushed into this worker's output queue.
    pub vertices_discovered: u64,
    /// Consumed slots whose vertex level was already set — the wasted
    /// duplicate explorations the optimistic scheme trades for lock
    /// freedom.
    pub duplicate_explorations: u64,
    /// Segment reads aborted at a cleared (0) slot.
    pub stale_slot_aborts: u64,
    /// Segments fetched from centralized/pool dispatchers.
    pub segments_fetched: u64,
    /// Dispatcher retries (raced or invalid fetches).
    pub fetch_retries: u64,
    /// Pops skipped by the §IV-D owner-array dedup.
    pub dedup_skips: u64,
    /// Lock acquisitions (lock-based variants).
    pub lock_acquisitions: u64,
    /// Faults injected into this worker by the `chaos` backend (deferred
    /// stores, delay windows, index skews); always 0 without the feature.
    pub injected_faults: u64,
    /// Sum of out-degrees of the vertices this worker discovered — the
    /// next frontier's edge volume, which drives the hybrid α/β switch
    /// heuristic. Counted only when [`crate::BfsOptions::hybrid`] is set
    /// (0 otherwise, so the paper's top-down hot path pays nothing).
    pub frontier_edges: u64,
    /// Steal outcomes (work-stealing variants).
    pub steal: StealCounters,
}

impl ThreadStats {
    /// Field-wise accumulate.
    pub fn merge(&mut self, o: &ThreadStats) {
        self.vertices_explored += o.vertices_explored;
        self.edges_scanned += o.edges_scanned;
        self.vertices_discovered += o.vertices_discovered;
        self.duplicate_explorations += o.duplicate_explorations;
        self.stale_slot_aborts += o.stale_slot_aborts;
        self.segments_fetched += o.segments_fetched;
        self.fetch_retries += o.fetch_retries;
        self.dedup_skips += o.dedup_skips;
        self.lock_acquisitions += o.lock_acquisitions;
        self.injected_faults += o.injected_faults;
        self.frontier_edges += o.frontier_edges;
        self.steal.merge(&o.steal);
    }

    /// Field-wise difference against an earlier snapshot of the same
    /// monotonically increasing counters. Used by the driver to turn
    /// cumulative per-thread totals into per-level deltas.
    pub fn diff(&self, earlier: &ThreadStats) -> ThreadStats {
        ThreadStats {
            vertices_explored: self.vertices_explored - earlier.vertices_explored,
            edges_scanned: self.edges_scanned - earlier.edges_scanned,
            vertices_discovered: self.vertices_discovered - earlier.vertices_discovered,
            duplicate_explorations: self.duplicate_explorations - earlier.duplicate_explorations,
            stale_slot_aborts: self.stale_slot_aborts - earlier.stale_slot_aborts,
            segments_fetched: self.segments_fetched - earlier.segments_fetched,
            fetch_retries: self.fetch_retries - earlier.fetch_retries,
            dedup_skips: self.dedup_skips - earlier.dedup_skips,
            lock_acquisitions: self.lock_acquisitions - earlier.lock_acquisitions,
            injected_faults: self.injected_faults - earlier.injected_faults,
            frontier_edges: self.frontier_edges - earlier.frontier_edges,
            steal: self.steal.diff(&earlier.steal),
        }
    }
}

/// One level's telemetry (collected when
/// [`crate::BfsOptions::collect_level_stats`] is set): the frontier
/// profile plus every [`ThreadStats`] counter as a per-level delta
/// merged across workers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelStats {
    /// BFS depth of the vertices consumed this level.
    pub level: u32,
    /// Queue entries consumed (frontier size incl. duplicate pushes).
    pub frontier: usize,
    /// Queue entries produced for the next level.
    pub discovered: usize,
    /// Wall time of the level (barrier to barrier).
    pub duration: std::time::Duration,
    /// Whether the watchdog finished this level with the serial sweep.
    pub degraded: bool,
    /// Direction the level ran in; always
    /// [`crate::options::Direction::TopDown`] unless
    /// [`crate::BfsOptions::hybrid`] was set.
    pub direction: crate::options::Direction,
    /// Whether this (top-down) level consumed a prefix-sum-compacted
    /// frontier instead of queue segments; always `false` unless
    /// [`crate::BfsOptions::compaction`] was set.
    pub compacted: bool,
    /// This level's counter deltas, merged across all workers. Summing
    /// `counters` over all levels reproduces [`RunStats::totals`]
    /// exactly (the conservation invariant the schema tests check).
    pub counters: ThreadStats,
}

/// How a run ended (carried in [`RunStats::outcome`]).
///
/// `Complete` and `Degraded` label full traversals — every reachable
/// vertex is labeled (a degraded run finished some levels with the
/// watchdog's serial sweep but lost nothing). `Cancelled` and
/// `DeadlineExceeded` label partial traversals: the run quiesced at a
/// level boundary and the returned `levels`/`parents` state obeys the
/// partial-state contract (DESIGN.md §10) — every labeled vertex has
/// its exact BFS distance, and labeling is complete through the last
/// fully consumed level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Outcome {
    /// The traversal ran to termination with no degraded level.
    #[default]
    Complete,
    /// The traversal ran to termination but the watchdog finished at
    /// least one level with the serial sweep (see
    /// [`RunStats::degraded_levels`]).
    Degraded,
    /// [`obfs_sync::CancelToken::cancel`] stopped the run early.
    Cancelled,
    /// The cancel token's deadline stopped the run early.
    DeadlineExceeded,
}

impl Outcome {
    /// Whether the returned `level`/`parents` arrays cover the full
    /// traversal (false for the partial outcomes).
    pub fn is_complete(&self) -> bool {
        matches!(self, Outcome::Complete | Outcome::Degraded)
    }
}

/// Aggregated result statistics for one BFS run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Sum of all workers' counters.
    pub totals: ThreadStats,
    /// Per-worker counters (index = thread id; empty for serial runs).
    pub per_thread: Vec<ThreadStats>,
    /// Number of BFS levels executed (depth + 1 for non-trivial runs).
    pub levels: u32,
    /// Wall time of the traversal proper (excludes allocation/setup).
    pub traversal_time: std::time::Duration,
    /// Levels the watchdog finished with the leader's serial sweep
    /// (0 unless [`crate::BfsOptions::watchdog`] tripped).
    pub degraded_levels: u32,
    /// Direction each executed level ran in; empty unless
    /// [`crate::BfsOptions::hybrid`] was set.
    pub directions: Vec<crate::options::Direction>,
    /// Number of adjacent level pairs that ran in different directions
    /// (0 unless [`crate::BfsOptions::hybrid`] was set).
    pub direction_switches: u32,
    /// Levels that consumed a prefix-sum-compacted frontier (0 unless
    /// [`crate::BfsOptions::compaction`] was set).
    pub compacted_levels: u32,
    /// The bitmap scan backend the run's kernels used (bottom-up and
    /// compaction walks); `None` for serial runs, which never touch the
    /// dispatched kernels.
    pub kernel_backend: Option<crate::dispatch::ScanBackend>,
    /// Per-level telemetry; empty unless
    /// [`crate::BfsOptions::collect_level_stats`] was set (and always
    /// empty for serial runs).
    pub level_stats: Vec<LevelStats>,
    /// Flight-recorder event rings, one per worker; `None` unless
    /// [`crate::BfsOptions::flight_recorder`] was set on a build with
    /// the `trace` feature.
    pub flight: Option<crate::flight::FlightRecording>,
    /// Per-worker latency histograms; `None` unless
    /// [`crate::BfsOptions::collect_histograms`] was set.
    pub hists: Option<RunHists>,
    /// How the run ended; anything but the default
    /// [`Outcome::Complete`] needs [`crate::BfsOptions::watchdog`] or
    /// [`crate::BfsOptions::cancel`].
    pub outcome: Outcome,
    /// Whether the labeling is partial (`outcome` is `Cancelled` or
    /// `DeadlineExceeded`); partial state still satisfies
    /// [`crate::validate::check_partial`].
    pub partial: bool,
}

/// The histogram sets drained from every worker of a run
/// (index = thread id).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunHists {
    /// One histogram set per worker.
    pub workers: Vec<obfs_sync::metrics::WorkerHists>,
}

impl RunHists {
    /// All workers' histograms folded together.
    pub fn merged(&self) -> obfs_sync::metrics::WorkerHists {
        let mut out = obfs_sync::metrics::WorkerHists::default();
        for w in &self.workers {
            out.merge(w);
        }
        out
    }
}

impl RunStats {
    /// Build from per-thread stats.
    pub fn from_threads(
        per_thread: Vec<ThreadStats>,
        levels: u32,
        traversal_time: std::time::Duration,
    ) -> Self {
        let mut totals = ThreadStats::default();
        for t in &per_thread {
            totals.merge(t);
        }
        Self {
            totals,
            per_thread,
            levels,
            traversal_time,
            degraded_levels: 0,
            directions: Vec::new(),
            direction_switches: 0,
            compacted_levels: 0,
            kernel_backend: None,
            level_stats: Vec::new(),
            flight: None,
            hists: None,
            outcome: Outcome::default(),
            partial: false,
        }
    }

    /// Traversed edges per second (the paper's Figure 3 metric), given the
    /// number of edges actually reachable in this traversal.
    pub fn teps(&self, traversed_edges: u64) -> f64 {
        let s = self.traversal_time.as_secs_f64();
        if s <= 0.0 {
            f64::INFINITY
        } else {
            traversed_edges as f64 / s
        }
    }

    /// Imbalance ratio: max worker explored / mean worker explored
    /// (1.0 = perfectly balanced). NaN for serial runs.
    pub fn balance_ratio(&self) -> f64 {
        if self.per_thread.is_empty() {
            return f64::NAN;
        }
        let max = self.per_thread.iter().map(|t| t.vertices_explored).max().unwrap() as f64;
        let mean = self.totals.vertices_explored as f64 / self.per_thread.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steal_counters_consistency() {
        let mut s = StealCounters::default();
        assert!(s.is_consistent());
        s.attempts = 10;
        s.success = 4;
        s.victim_idle = 3;
        s.stale = 2;
        s.invalid = 1;
        assert!(s.is_consistent());
        assert_eq!(s.failed(), 6);
        s.too_small = 1;
        assert!(!s.is_consistent());
    }

    #[test]
    fn merge_adds_fieldwise() {
        let a = ThreadStats { vertices_explored: 5, edges_scanned: 9, ..Default::default() };
        let mut b = ThreadStats { vertices_explored: 1, dedup_skips: 2, ..Default::default() };
        b.merge(&a);
        assert_eq!(b.vertices_explored, 6);
        assert_eq!(b.edges_scanned, 9);
        assert_eq!(b.dedup_skips, 2);
    }

    #[test]
    fn run_stats_totals() {
        let t1 = ThreadStats { vertices_explored: 10, ..Default::default() };
        let t2 = ThreadStats { vertices_explored: 30, ..Default::default() };
        let rs = RunStats::from_threads(vec![t1, t2], 3, std::time::Duration::from_millis(10));
        assert_eq!(rs.totals.vertices_explored, 40);
        assert_eq!(rs.levels, 3);
        assert!((rs.balance_ratio() - 1.5).abs() < 1e-12);
        let teps = rs.teps(1000);
        assert!((teps - 100_000.0).abs() < 1.0);
    }

    #[test]
    fn balance_ratio_edge_cases() {
        let rs = RunStats::default();
        assert!(rs.balance_ratio().is_nan());
        let rs2 = RunStats::from_threads(
            vec![ThreadStats::default(); 4],
            0,
            std::time::Duration::ZERO,
        );
        assert_eq!(rs2.balance_ratio(), 1.0);
    }
}
