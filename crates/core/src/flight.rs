//! Run-level flight-recorder aggregation and chrome://tracing export.
//!
//! The per-thread rings themselves live in [`obfs_sync::flight`]; this
//! module holds what the driver assembles out of them after a run
//! ([`FlightRecording`]) and a hand-rolled exporter to the Chrome Trace
//! Event JSON format, which both `chrome://tracing` and Perfetto load
//! directly. The exporter is dependency-free on purpose: the workspace
//! builds offline.

pub use obfs_sync::flight::{kind, FlightEvent, RingDump};

/// Default ring capacity (events per worker) used by the CLI's `--trace`
/// flag. 16Ki events × 32 B = 512 KiB per worker — enough to hold every
/// level/barrier/steal event of a medium traversal without wrapping.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 16 * 1024;

/// The drained event rings of one run, one entry per worker (index =
/// thread id).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlightRecording {
    /// Per-worker dumps, oldest event first within each worker.
    pub workers: Vec<RingDump>,
}

impl FlightRecording {
    /// Total surviving events across all workers.
    pub fn total_events(&self) -> usize {
        self.workers.iter().map(|w| w.events.len()).sum()
    }

    /// Total events overwritten by full rings across all workers.
    pub fn total_dropped(&self) -> u64 {
        self.workers.iter().map(|w| w.dropped).sum()
    }

    /// Number of surviving events of one [`kind`] across all workers.
    pub fn count(&self, kind: u16) -> usize {
        self.workers
            .iter()
            .map(|w| w.events.iter().filter(|e| e.kind == kind).count())
            .sum()
    }
}

/// Render a recording as Chrome Trace Event JSON (the
/// `{"traceEvents": [...]}` object form). Paired events (level spans,
/// barrier waits, worker lifetimes) become `B`/`E` duration events so
/// the viewer draws them as bars; everything else becomes an instant
/// event with its payload in `args`.
pub fn to_chrome_trace(rec: &FlightRecording) -> String {
    let mut out = String::with_capacity(128 + rec.total_events() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for (tid, worker) in rec.workers.iter().enumerate() {
        for e in &worker.events {
            if !first {
                out.push(',');
            }
            first = false;
            push_event(&mut out, tid, e);
        }
    }
    out.push_str("]}");
    out
}

fn push_event(out: &mut String, tid: usize, e: &FlightEvent) {
    use std::fmt::Write;
    let (name, ph): (String, char) = match e.kind {
        kind::LEVEL_START => (format!("level {}", e.level), 'B'),
        kind::LEVEL_END => (format!("level {}", e.level), 'E'),
        kind::BARRIER_ENTER => ("barrier".to_string(), 'B'),
        kind::BARRIER_EXIT => ("barrier".to_string(), 'E'),
        kind::WORKER_BEGIN => ("worker".to_string(), 'B'),
        kind::WORKER_END => ("worker".to_string(), 'E'),
        k => (kind::name(k).to_string(), 'i'),
    };
    write!(
        out,
        "{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":0,\"tid\":{}",
        name, ph, e.ts_us, tid
    )
    .unwrap();
    if ph == 'i' {
        // Instant events get scope + their raw payload for drill-down.
        write!(
            out,
            ",\"s\":\"t\",\"args\":{{\"level\":{},\"a\":{},\"b\":{}}}",
            e.level, e.a, e.b
        )
        .unwrap();
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts_us: u64, kind: u16, level: u32, a: u64, b: u64) -> FlightEvent {
        FlightEvent { ts_us, kind, level, a, b }
    }

    #[test]
    fn counts_span_workers() {
        let rec = FlightRecording {
            workers: vec![
                RingDump {
                    events: vec![ev(0, kind::SEGMENT_FETCH, 0, 0, 4), ev(1, kind::FAULT, 0, 1, 2)],
                    dropped: 3,
                },
                RingDump { events: vec![ev(2, kind::SEGMENT_FETCH, 1, 0, 8)], dropped: 0 },
            ],
        };
        assert_eq!(rec.total_events(), 3);
        assert_eq!(rec.total_dropped(), 3);
        assert_eq!(rec.count(kind::SEGMENT_FETCH), 2);
        assert_eq!(rec.count(kind::FAULT), 1);
        assert_eq!(rec.count(kind::STEAL_SUCCESS), 0);
    }

    #[test]
    fn chrome_export_shape() {
        let rec = FlightRecording {
            workers: vec![RingDump {
                events: vec![
                    ev(10, kind::WORKER_BEGIN, 0, 0, 0),
                    ev(11, kind::LEVEL_START, 2, 5, 0),
                    ev(12, kind::STEAL_SUCCESS, 2, 1, 16),
                    ev(13, kind::LEVEL_END, 2, 0, 0),
                    ev(14, kind::WORKER_END, 0, 0, 0),
                ],
                dropped: 0,
            }],
        };
        let json = to_chrome_trace(&rec);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"level 2\",\"ph\":\"B\""));
        assert!(json.contains("\"name\":\"level 2\",\"ph\":\"E\""));
        assert!(json.contains("\"name\":\"steal-success\",\"ph\":\"i\""));
        assert!(json.contains("\"args\":{\"level\":2,\"a\":1,\"b\":16}"));
        // Balanced braces/brackets (cheap well-formedness proxy; the
        // bench JSON parser does the real round-trip in tier-2 tests).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_recording_exports_empty_array() {
        let json = to_chrome_trace(&FlightRecording::default());
        assert_eq!(json, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
    }
}
