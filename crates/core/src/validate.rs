//! Result validation helpers used by tests, examples and the bench
//! harness (every benchmarked run is validated against serial BFS once
//! per graph/source pair).

use crate::{BfsResult, UNVISITED};
use obfs_graph::{CsrGraph, VertexId, INVALID_VERTEX};

/// Errors a BFS result can exhibit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// `levels[v]` differs from the reference.
    LevelMismatch {
        /// Offending vertex.
        vertex: VertexId,
        /// Level the result assigned.
        got: u32,
        /// Level the reference assigns.
        expected: u32,
    },
    /// Source level is not 0.
    BadSource {
        /// The source vertex.
        src: VertexId,
        /// Its (wrong) level.
        level: u32,
    },
    /// A parent entry is inconsistent with the level array or the graph.
    BadParent {
        /// Offending vertex.
        vertex: VertexId,
        /// Its recorded parent.
        parent: VertexId,
        /// Which invariant broke.
        reason: &'static str,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::LevelMismatch { vertex, got, expected } => {
                write!(f, "level[{vertex}] = {got}, expected {expected}")
            }
            ValidationError::BadSource { src, level } => {
                write!(f, "source {src} has level {level}, expected 0")
            }
            ValidationError::BadParent { vertex, parent, reason } => {
                write!(f, "parent[{vertex}] = {parent}: {reason}")
            }
        }
    }
}

/// Compare a result against reference levels (e.g. from
/// [`crate::serial::serial_bfs`]). Returns the first mismatch.
pub fn check_levels(result: &BfsResult, reference: &[u32]) -> Result<(), ValidationError> {
    assert_eq!(result.levels.len(), reference.len(), "vertex count mismatch");
    for (v, (&got, &expected)) in result.levels.iter().zip(reference).enumerate() {
        if got != expected {
            return Err(ValidationError::LevelMismatch { vertex: v as VertexId, got, expected });
        }
    }
    Ok(())
}

/// Validate a result *intrinsically* (without a reference): source at
/// level 0, and every parent entry consistent — parent reached one level
/// earlier via a real edge. This certifies any BFS tree, independent of
/// which of the many valid trees the nondeterministic run produced.
pub fn check_self_consistent(
    graph: &CsrGraph,
    src: VertexId,
    result: &BfsResult,
) -> Result<(), ValidationError> {
    if result.levels[src as usize] != 0 {
        return Err(ValidationError::BadSource { src, level: result.levels[src as usize] });
    }
    if let Some(parents) = &result.parents {
        // v is the vertex id itself, not just an index into the arrays.
        #[allow(clippy::needless_range_loop)]
        for v in 0..graph.num_vertices() {
            let lv = result.levels[v];
            let p = parents[v];
            if lv == UNVISITED {
                if p != INVALID_VERTEX {
                    return Err(ValidationError::BadParent {
                        vertex: v as VertexId,
                        parent: p,
                        reason: "unreached vertex has a parent",
                    });
                }
                continue;
            }
            if v as VertexId == src {
                if p != src {
                    return Err(ValidationError::BadParent {
                        vertex: v as VertexId,
                        parent: p,
                        reason: "source must be its own parent",
                    });
                }
                continue;
            }
            if p == INVALID_VERTEX {
                return Err(ValidationError::BadParent {
                    vertex: v as VertexId,
                    parent: p,
                    reason: "reached vertex lacks a parent",
                });
            }
            if result.levels[p as usize] + 1 != lv {
                return Err(ValidationError::BadParent {
                    vertex: v as VertexId,
                    parent: p,
                    reason: "parent not exactly one level shallower",
                });
            }
            if !graph.neighbors(p).contains(&(v as VertexId)) {
                return Err(ValidationError::BadParent {
                    vertex: v as VertexId,
                    parent: p,
                    reason: "no edge from parent to vertex",
                });
            }
        }
    }
    Ok(())
}

/// Validate a *partial* result (a cancelled or deadline-exceeded run,
/// `stats.partial == true`) against reference levels — the partial-state
/// contract of DESIGN.md §10:
///
/// * every labeled vertex carries its **exact** BFS distance (level-`d`
///   labels are only ever written while consuming level `d-1`, whose
///   frontier holds exactly the distance-`d-1` vertices, so even a
///   racy duplicate write stores the same value);
/// * labeling is **complete** for every distance below
///   `result.stats.levels` (those levels' predecessors were fully
///   consumed before the abort barrier);
/// * any recorded parents are self-consistent (the parent store follows
///   the level store on the same thread, so a labeled vertex never has
///   a missing or torn parent).
///
/// Also holds for complete runs, where it degenerates to
/// [`check_levels`] + [`check_self_consistent`].
pub fn check_partial(
    graph: &CsrGraph,
    src: VertexId,
    result: &BfsResult,
    reference: &[u32],
) -> Result<(), ValidationError> {
    assert_eq!(result.levels.len(), reference.len(), "vertex count mismatch");
    let consumed = result.stats.levels;
    for (v, (&got, &expected)) in result.levels.iter().zip(reference).enumerate() {
        let missing = got == UNVISITED && expected != UNVISITED && expected < consumed;
        if (got != UNVISITED && got != expected) || missing {
            return Err(ValidationError::LevelMismatch { vertex: v as VertexId, got, expected });
        }
    }
    check_self_consistent(graph, src, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{Algorithm, BfsOptions};
    use crate::serial::serial_bfs;
    use crate::run_bfs;
    use obfs_graph::gen;

    #[test]
    fn check_levels_catches_mismatch() {
        let g = gen::path(5);
        let mut r = serial_bfs(&g, 0);
        assert!(check_levels(&r, &[0, 1, 2, 3, 4]).is_ok());
        r.levels[3] = 9;
        let err = check_levels(&r, &[0, 1, 2, 3, 4]).unwrap_err();
        assert!(matches!(err, ValidationError::LevelMismatch { vertex: 3, got: 9, expected: 3 }));
    }

    #[test]
    fn parallel_parents_self_consistent() {
        let g = gen::barabasi_albert(600, 3, 7);
        let opts = BfsOptions { threads: 4, record_parents: true, ..Default::default() };
        for algo in [Algorithm::Bfscl, Algorithm::Bfswl, Algorithm::Bfswsl, Algorithm::EdgeCl] {
            let r = run_bfs(algo, &g, 0, &opts);
            check_self_consistent(&g, 0, &r)
                .unwrap_or_else(|e| panic!("{algo}: invalid BFS tree: {e}"));
        }
    }

    #[test]
    fn self_consistency_catches_bad_parent() {
        let g = gen::path(4);
        let opts = BfsOptions { record_parents: true, ..Default::default() };
        let mut r = crate::serial::serial_bfs_with_opts(&g, 0, &opts);
        assert!(check_self_consistent(&g, 0, &r).is_ok());
        r.parents.as_mut().unwrap()[3] = 0; // 0 is not adjacent to 3
        let err = check_self_consistent(&g, 0, &r).unwrap_err();
        assert!(matches!(err, ValidationError::BadParent { vertex: 3, .. }));
    }

    #[test]
    fn self_consistency_catches_bad_source() {
        let g = gen::path(3);
        let mut r = serial_bfs(&g, 0);
        r.levels[0] = 5;
        assert!(matches!(
            check_self_consistent(&g, 0, &r),
            Err(ValidationError::BadSource { .. })
        ));
    }

    #[test]
    fn check_partial_enforces_the_contract() {
        let g = gen::path(6);
        let reference = serial_bfs(&g, 0).levels.clone();
        let mut r = serial_bfs(&g, 0);
        // Simulate an abort at the end of level 3: distances 0..=3 fully
        // labeled, the partially-consumed level may have labeled 4 too.
        r.stats.levels = 4;
        r.stats.partial = true;
        r.levels[5] = UNVISITED; // beyond the completed prefix: fine
        assert!(check_partial(&g, 0, &r, &reference).is_ok());
        // A labeled vertex must carry its exact distance...
        let mut bad = r.clone();
        bad.levels[4] = 7;
        assert!(matches!(
            check_partial(&g, 0, &bad, &reference),
            Err(ValidationError::LevelMismatch { vertex: 4, got: 7, expected: 4 })
        ));
        // ... and coverage through the completed levels is mandatory.
        let mut hole = r.clone();
        hole.levels[2] = UNVISITED;
        assert!(matches!(
            check_partial(&g, 0, &hole, &reference),
            Err(ValidationError::LevelMismatch { vertex: 2, .. })
        ));
        // A complete run passes as-is.
        let full = serial_bfs(&g, 0);
        assert!(check_partial(&g, 0, &full, &reference).is_ok());
    }

    #[test]
    fn error_display_is_informative() {
        let e = ValidationError::LevelMismatch { vertex: 7, got: 2, expected: 3 };
        assert_eq!(e.to_string(), "level[7] = 2, expected 3");
    }
}
