//! Serial reference BFS (`sbfs` in the paper's tables).

use crate::options::BfsOptions;
use crate::stats::{RunStats, ThreadStats};
use crate::{BfsResult, UNVISITED};
use obfs_graph::{CsrGraph, VertexId, INVALID_VERTEX};
use std::collections::VecDeque;

/// Standard FIFO-queue serial BFS. Ground truth for every parallel
/// variant and the `sbfs` baseline row of Table V.
pub fn serial_bfs(graph: &CsrGraph, src: VertexId) -> BfsResult {
    serial_bfs_with_opts(graph, src, &BfsOptions { record_parents: false, ..Default::default() })
}

/// Serial BFS honouring `record_parents`.
pub fn serial_bfs_with_opts(graph: &CsrGraph, src: VertexId, opts: &BfsOptions) -> BfsResult {
    let n = graph.num_vertices();
    assert!((src as usize) < n, "source {src} out of range for n={n}");
    let t0 = std::time::Instant::now();
    let mut levels = vec![UNVISITED; n];
    let mut parents = opts.record_parents.then(|| vec![INVALID_VERTEX; n]);
    let mut ts = ThreadStats::default();
    let mut q = VecDeque::with_capacity(1024);
    levels[src as usize] = 0;
    if let Some(p) = &mut parents {
        p[src as usize] = src;
    }
    q.push_back(src);
    let mut deepest = 0u32;
    while let Some(u) = q.pop_front() {
        let next = levels[u as usize] + 1;
        ts.vertices_explored += 1;
        let neigh = graph.neighbors(u);
        ts.edges_scanned += neigh.len() as u64;
        for &w in neigh {
            if levels[w as usize] == UNVISITED {
                levels[w as usize] = next;
                deepest = deepest.max(next);
                if let Some(p) = &mut parents {
                    p[w as usize] = u;
                }
                q.push_back(w);
                ts.vertices_discovered += 1;
            }
        }
    }
    let traversal_time = t0.elapsed();
    let mut stats = RunStats::from_threads(vec![ts], deepest + 1, traversal_time);
    stats.per_thread.clear(); // serial: per-thread breakdown is meaningless
    BfsResult { levels, parents, stats }
}

/// Bitmap-assisted serial BFS: identical traversal order, but visited
/// tracking via a packed bit array (the structure Baseline2 uses). Used
/// in micro-benchmarks to isolate the cost of bitmap probes.
pub fn serial_bfs_bitmap(graph: &CsrGraph, src: VertexId) -> BfsResult {
    let n = graph.num_vertices();
    assert!((src as usize) < n, "source {src} out of range for n={n}");
    let t0 = std::time::Instant::now();
    let mut levels = vec![UNVISITED; n];
    let mut visited = vec![0u64; n.div_ceil(64)];
    let mut ts = ThreadStats::default();
    let mut q = VecDeque::with_capacity(1024);
    let set = |bits: &mut [u64], v: usize| bits[v / 64] |= 1 << (v % 64);
    let get = |bits: &[u64], v: usize| bits[v / 64] >> (v % 64) & 1 == 1;
    levels[src as usize] = 0;
    set(&mut visited, src as usize);
    q.push_back(src);
    let mut deepest = 0u32;
    while let Some(u) = q.pop_front() {
        let next = levels[u as usize] + 1;
        ts.vertices_explored += 1;
        let neigh = graph.neighbors(u);
        ts.edges_scanned += neigh.len() as u64;
        for &w in neigh {
            if !get(&visited, w as usize) {
                set(&mut visited, w as usize);
                levels[w as usize] = next;
                deepest = deepest.max(next);
                q.push_back(w);
                ts.vertices_discovered += 1;
            }
        }
    }
    let traversal_time = t0.elapsed();
    let mut stats = RunStats::from_threads(vec![ts], deepest + 1, traversal_time);
    stats.per_thread.clear();
    BfsResult { levels, parents: None, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obfs_graph::gen;

    #[test]
    fn path_levels() {
        let g = gen::path(6);
        let r = serial_bfs(&g, 0);
        assert_eq!(r.levels, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(r.depth(), 5);
        assert_eq!(r.reached(), 6);
        assert_eq!(r.stats.levels, 6);
    }

    #[test]
    fn disconnected_vertices_unvisited() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (3, 4)]);
        let r = serial_bfs(&g, 0);
        assert_eq!(r.levels[3], UNVISITED);
        assert_eq!(r.levels[4], UNVISITED);
        assert_eq!(r.reached(), 2);
    }

    #[test]
    fn parents_form_valid_tree() {
        let g = gen::binary_tree(31);
        let opts = BfsOptions { record_parents: true, ..Default::default() };
        let r = serial_bfs_with_opts(&g, 0, &opts);
        let parents = r.parents.as_ref().unwrap();
        assert_eq!(parents[0], 0);
        #[allow(clippy::needless_range_loop)] // v is the vertex id under test
        for v in 1..31usize {
            let p = parents[v] as usize;
            assert_eq!(r.levels[v], r.levels[p] + 1, "parent level mismatch at {v}");
            assert!(g.neighbors(p as u32).contains(&(v as u32)), "parent edge missing");
        }
    }

    #[test]
    fn bitmap_variant_agrees() {
        let g = gen::barabasi_albert(500, 3, 11);
        let a = serial_bfs(&g, 7);
        let b = serial_bfs_bitmap(&g, 7);
        assert_eq!(a.levels, b.levels);
        assert_eq!(a.stats.totals.edges_scanned, b.stats.totals.edges_scanned);
    }

    #[test]
    fn counters_consistent() {
        let g = gen::cycle(10);
        let r = serial_bfs(&g, 0);
        // Every reached vertex is explored exactly once serially.
        assert_eq!(r.stats.totals.vertices_explored as usize, r.reached());
        assert_eq!(r.stats.totals.vertices_discovered as usize, r.reached() - 1);
        assert_eq!(r.stats.totals.edges_scanned, 20);
    }

    #[test]
    fn single_vertex_graph() {
        let g = CsrGraph::from_edges(1, &[]);
        let r = serial_bfs(&g, 0);
        assert_eq!(r.levels, vec![0]);
        assert_eq!(r.stats.levels, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source_panics() {
        let g = gen::path(3);
        let _ = serial_bfs(&g, 9);
    }
}
