//! Shared run state and the discovery fast path common to every parallel
//! BFS variant.

// lint:protocol racy — optimistic discovery: plain loads may be stale, so
// every claim below must revalidate or carry a single-writer waiver.

use crate::batch::BatchState;
use crate::frontier::{
    decode, FrontierBitmap, FrontierQueue, QueueSet, SegmentDesc, BITMAP_WORD_BITS, EMPTY_SLOT,
};
use crate::options::{BfsOptions, DedupMode, Direction};
use crate::perthread::PerThread;
use crate::stats::ThreadStats;
use crate::UNVISITED;
use obfs_graph::{CsrGraph, VertexId, INVALID_VERTEX};
use obfs_sync::{CachePadded, CancelCause, RacyBuf, RacyUsize, SpinLock};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};

/// A cell written only inside barrier serial sections (exactly one thread,
/// all others parked at the barrier) and read only between barriers.
///
/// The barrier's release/acquire edges order the accesses, so the data
/// race the type system fears cannot occur — but that protocol cannot be
/// expressed in safe Rust, hence the unsafe accessors.
pub struct SerialCell<T>(UnsafeCell<T>);

// SAFETY: see type-level docs; the barrier protocol serializes access.
unsafe impl<T: Send> Sync for SerialCell<T> {}

impl<T> SerialCell<T> {
    /// Wrap a value.
    pub fn new(v: T) -> Self {
        Self(UnsafeCell::new(v))
    }

    /// # Safety
    /// Call only from a barrier serial section (no concurrent access).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self) -> &mut T {
        &mut *self.0.get()
    }

    /// # Safety
    /// Call only while no serial section can be mutating the cell.
    pub unsafe fn get(&self) -> &T {
        &*self.0.get()
    }

    /// Consume into the inner value (requires ownership, so no
    /// concurrent access can exist).
    pub fn into_inner(self) -> T {
        self.0.into_inner()
    }
}

/// Leader-side accumulator for the optional per-level stats series.
#[derive(Debug)]
pub struct TraceState {
    /// Finished level entries.
    pub entries: Vec<crate::stats::LevelStats>,
    /// Start instant of the level in progress.
    pub mark: std::time::Instant,
    /// Frontier size entering the level in progress.
    pub frontier_in: usize,
    /// Merged cumulative counters at the previous level boundary; the
    /// per-level delta is the difference against this snapshot.
    pub prev_totals: ThreadStats,
}

impl Default for TraceState {
    fn default() -> Self {
        Self {
            entries: Vec::new(),
            mark: std::time::Instant::now(),
            frontier_in: 0,
            prev_totals: ThreadStats::default(),
        }
    }
}

/// The in-edge graph a hybrid run probes during bottom-up levels: either
/// borrowed from the caller (benchmarks amortize the transpose across
/// runs) or built once per run before the timed traversal starts.
pub enum TransposeRef<'g> {
    /// Caller-provided transpose (`graph.transpose()`, or the graph
    /// itself for symmetric graphs).
    Borrowed(&'g CsrGraph),
    /// Transpose computed by [`RunState::new_with_transpose`].
    Owned(Box<CsrGraph>),
}

impl TransposeRef<'_> {
    /// The in-edge graph.
    #[inline]
    pub fn graph(&self) -> &CsrGraph {
        match self {
            TransposeRef::Borrowed(g) => g,
            TransposeRef::Owned(g) => g,
        }
    }
}

/// Leader-side bookkeeping for the hybrid α/β switch heuristic, written
/// only in barrier serial sections.
#[derive(Debug)]
pub struct HybridCtl {
    /// Edge volume not yet claimed by any discovered frontier (`mu`).
    pub unexplored_edges: u64,
    /// Cumulative cross-thread `frontier_edges` at the previous level
    /// boundary; the per-level `mf` is the difference against this.
    pub prev_frontier_edges: u64,
    /// Direction of every executed level, in order.
    pub directions: Vec<Direction>,
    /// Number of adjacent level pairs that ran in different directions.
    pub switches: u32,
}

/// Everything the hybrid mode adds to a run: the in-edge graph, the
/// frontier bitmap for bottom-up levels, and the leader's heuristic
/// state. Present iff [`BfsOptions::hybrid`] is set.
pub struct HybridState<'g> {
    /// In-edge graph probed by the bottom-up kernel.
    pub transpose: TransposeRef<'g>,
    /// Frontier-membership bitmap, rebuilt per bottom-up level.
    pub bitmap: FrontierBitmap,
    /// Visited-vertex bitmap rebuilt alongside `bitmap`: bit `v` set iff
    /// `level[v] != UNVISITED` (out-of-range tail bits are pre-set so a
    /// wordwise candidate scan of `!word` is automatically masked). Only
    /// the word-at-a-time bottom-up kernel reads it.
    pub visited: FrontierBitmap,
    /// Direction of the upcoming/current level (leader-written in the
    /// level-end serial section, worker-read between barriers).
    pub direction: SerialCell<Direction>,
    /// Heuristic bookkeeping (leader-only).
    pub ctl: SerialCell<HybridCtl>,
}

/// Everything the prefix-sum compaction mode adds to a run (see
/// [`crate::scan`]). Present iff [`BfsOptions::compaction`] is set;
/// never armed for batched runs.
pub struct CompactState {
    /// Frontier-membership bitmap rebuilt per compacted level from the
    /// `level[]` array (word-partitioned by chunk: single writer).
    pub bitmap: FrontierBitmap,
    /// Per-chunk popcounts ([`crate::scan::COMPACT_CHUNK_WORDS`] bitmap
    /// words per chunk); each chunk's owner is its only writer.
    pub chunk_counts: RacyBuf,
    /// Per-thread block totals (sum of the thread's chunk counts),
    /// published at the fill barrier; own-slot single-writer.
    pub block_totals: RacyBuf,
    /// The materialized frontier array: vertices of the level, ascending
    /// within each chunk, chunks in order. Each worker writes only the
    /// disjoint range `[block_prefix(tid), block_prefix(tid) + total)`.
    pub frontier: RacyBuf,
    /// Whether the upcoming/current level consumes the compacted frontier
    /// (leader-written in the level-end serial section, worker-read at
    /// the loop top — same protocol as `HybridState::direction`).
    pub enabled: SerialCell<bool>,
    /// Leader-side count of levels that ran compacted.
    pub levels_compacted: SerialCell<u32>,
}

/// Cursor state of the lock-based centralized dispatcher (BFSC): the
/// `⟨q, f⟩` pair of the paper, protected by one global lock.
#[derive(Debug, Clone, Copy, Default)]
pub struct CentralCursor {
    /// Current queue index.
    pub q: usize,
    /// Front offset within that queue.
    pub f: usize,
}

/// Everything the workers share during one BFS run.
pub struct RunState<'g> {
    /// The (immutable) graph being traversed.
    pub graph: &'g CsrGraph,
    /// `level[v]`; written with benign races (same value within a level).
    pub levels: RacyBuf,
    /// Optional BFS-tree parents (arbitrary concurrent write).
    pub parents: Option<RacyBuf>,
    /// §IV-D owner array: queue id + 1 of the queue a vertex was pushed
    /// to (arbitrary concurrent write), 0 = unset.
    pub owner: Option<RacyBuf>,
    /// The two queue sets; `queues[parity]` is Qin, `queues[parity^1]` Qout.
    pub queues: [QueueSet; 2],
    /// Work-stealing per-thread segment descriptors.
    pub descs: Vec<CachePadded<SegmentDesc>>,
    /// Per-victim locks for the lock-based work-stealing variants.
    pub desc_locks: Vec<CachePadded<SpinLock<()>>>,
    /// Global lock + cursor for BFSC.
    pub central_lock: SpinLock<CentralCursor>,
    /// Global racy queue pointer for BFSCL, and one per pool for BFSDL
    /// (BFSCL uses `pool_cursors[0]`).
    pub pool_cursors: Vec<CachePadded<RacyUsize>>,
    /// Racy global edge cursor (EdgeCL dispatch and the phase-2-steal
    /// hub exploration).
    pub edge_cursor: CachePadded<RacyUsize>,
    /// Frontier size of the upcoming level; written by the barrier leader.
    pub next_total: RacyUsize,
    /// Per-thread hub lists for the scale-free variants.
    pub hubs: PerThread<Vec<VertexId>>,
    /// Leader-built flattened work lists (hub phase / EdgeCL): vertices
    /// and the exclusive prefix sums of their degrees.
    pub flat_vertices: SerialCell<Vec<VertexId>>,
    /// Exclusive degree prefix sums over `flat_vertices` (one extra
    /// trailing total).
    pub flat_prefix: SerialCell<Vec<u64>>,
    /// Leader-side per-level telemetry (when requested).
    pub trace: Option<SerialCell<TraceState>>,
    /// Direction-optimizing hybrid state; `None` unless
    /// [`BfsOptions::hybrid`] is set.
    pub hyb: Option<HybridState<'g>>,
    /// Prefix-sum compaction state; `None` unless
    /// [`BfsOptions::compaction`] is set (and always `None` for batched
    /// runs).
    pub compact: Option<CompactState>,
    /// The scan-kernel backend this run resolved ([`BfsOptions::kernel`];
    /// probed once per process for the default `Auto`).
    pub scan_backend: crate::dispatch::ScanBackend,
    /// Batched multi-source state; `Some` only for runs entered through
    /// the batch driver. When set, the single-source `levels` / `parents`
    /// / `owner` arrays above are empty and every discovery flows through
    /// the bit-parallel kernel in [`RunState::try_discover_batch`].
    pub batch: Option<BatchState>,
    /// Cached `opts.hybrid.is_some()` so the `frontier_edges` accounting
    /// in [`RunState::try_discover`] is one predictable branch (and the
    /// paper's top-down hot path pays nothing when hybrid is off).
    count_frontier_edges: bool,
    /// Watchdog/cancel trip flag. Deliberately a *real* atomic: the
    /// watchdog is control plane, not part of the paper's
    /// optimistically-racy state, so it must stay reliable even under
    /// fault injection. Also latched when the run's cancel token fires,
    /// so peers stop on the cached flag instead of re-polling the token.
    pub wd_abort: AtomicBool,
    /// Deadline of the level in progress in [`obfs_sync::Clock`] ticks
    /// (leader-written in each barrier serial section when a watchdog
    /// deadline is configured).
    pub wd_deadline: SerialCell<Option<u64>>,
    /// Levels the leader finished with the serial sweep.
    pub wd_degraded: SerialCell<u32>,
    /// Run-abort decision: the barrier leader publishes the cancel cause
    /// here in the level-end serial section; workers read it after the
    /// barrier and exit the level loop together (keeping the barrier
    /// counts aligned — a worker must never decide to leave on its own
    /// view of the token).
    pub run_abort: SerialCell<Option<CancelCause>>,
    /// Cached `opts.watchdog.is_some() || opts.cancel.is_some()` so the
    /// hot-path poll is one branch.
    abort_armed: bool,
    /// Worker count (`opts.threads`, validated).
    pub threads: usize,
    /// Resolved hub-degree threshold for the scale-free variants.
    pub hub_threshold: usize,
    /// The full option set of this run.
    pub opts: BfsOptions,
}

impl<'g> RunState<'g> {
    /// Allocate all shared state for one BFS run. When
    /// [`BfsOptions::hybrid`] is set the in-edge graph is computed here
    /// (before the driver starts its traversal timer); callers that
    /// already hold a transpose should use
    /// [`RunState::new_with_transpose`] instead.
    pub fn new(graph: &'g CsrGraph, opts: &BfsOptions) -> Self {
        Self::new_with_transpose(graph, opts, None)
    }

    /// Like [`RunState::new`], but probing bottom-up levels through the
    /// caller-provided in-edge graph (must be `graph.transpose()`, or
    /// `graph` itself when the graph is symmetric). Ignored unless
    /// [`BfsOptions::hybrid`] is set.
    pub fn new_with_transpose(
        graph: &'g CsrGraph,
        opts: &BfsOptions,
        transpose: Option<&'g CsrGraph>,
    ) -> Self {
        let n = graph.num_vertices();
        assert!(n >= 1, "BFS needs at least one vertex");
        assert!(
            n < UNVISITED as usize,
            "graph too large for u32 level encoding"
        );
        let p = opts.threads;
        assert!(p >= 1, "need at least one thread");
        if let Some(t) = &opts.topology {
            assert_eq!(
                t.threads(),
                p,
                "BfsOptions::topology describes {} workers but threads = {p}",
                t.threads()
            );
        }
        let pools = opts.pools.clamp(1, p);
        let hyb = opts.hybrid.map(|_| {
            if let Some(t) = transpose {
                assert_eq!(
                    t.num_vertices(),
                    n,
                    "transpose vertex count must match the graph"
                );
            }
            HybridState {
                transpose: match transpose {
                    Some(t) => TransposeRef::Borrowed(t),
                    None => TransposeRef::Owned(Box::new(graph.transpose())),
                },
                bitmap: FrontierBitmap::new(n),
                visited: FrontierBitmap::new(n),
                direction: SerialCell::new(Direction::TopDown),
                ctl: SerialCell::new(HybridCtl {
                    unexplored_edges: graph.num_edges(),
                    prev_frontier_edges: 0,
                    directions: Vec::new(),
                    switches: 0,
                }),
            }
        });
        let compact = opts.compaction.map(|_| {
            let bitmap = FrontierBitmap::new(n);
            let chunks =
                obfs_util::div_ceil(bitmap.word_count(), crate::scan::COMPACT_CHUNK_WORDS);
            CompactState {
                bitmap,
                chunk_counts: RacyBuf::new(chunks),
                block_totals: RacyBuf::new(p),
                frontier: RacyBuf::new(n),
                enabled: SerialCell::new(false),
                levels_compacted: SerialCell::new(0),
            }
        });
        Self {
            graph,
            levels: RacyBuf::new(n),
            parents: opts.record_parents.then(|| RacyBuf::new(n)),
            owner: (opts.dedup == DedupMode::OwnerArray).then(|| RacyBuf::new(n)),
            queues: [QueueSet::new(p, n), QueueSet::new(p, n)],
            descs: (0..p).map(|_| CachePadded::new(SegmentDesc::new())).collect(),
            desc_locks: (0..p).map(|_| CachePadded::new(SpinLock::new(()))).collect(),
            central_lock: SpinLock::new(CentralCursor::default()),
            pool_cursors: (0..pools).map(|_| CachePadded::new(RacyUsize::new(0))).collect(),
            edge_cursor: CachePadded::new(RacyUsize::new(0)),
            next_total: RacyUsize::new(0),
            hubs: PerThread::new(p, |_| Vec::new()),
            flat_vertices: SerialCell::new(Vec::new()),
            flat_prefix: SerialCell::new(Vec::new()),
            trace: opts.collect_level_stats.then(|| SerialCell::new(TraceState::default())),
            hyb,
            compact,
            scan_backend: opts.kernel.resolve(),
            batch: None,
            count_frontier_edges: opts.hybrid.is_some(),
            wd_abort: AtomicBool::new(false),
            wd_deadline: SerialCell::new(None),
            wd_degraded: SerialCell::new(0),
            run_abort: SerialCell::new(None),
            abort_armed: opts.watchdog.is_some() || opts.cancel.is_some(),
            threads: p,
            hub_threshold: opts.resolved_hub_threshold(graph),
            opts: opts.clone(),
        }
    }

    /// Like [`RunState::new_with_transpose`], but for a batched
    /// multi-source run over `sources` (1..=64 of them, duplicates
    /// allowed). The single-source label arrays are replaced by the
    /// bit-parallel [`BatchState`]; the owner-array dedup is
    /// incompatible with batching (a vertex legitimately re-enters the
    /// frontier once per query) and is rejected.
    pub fn new_batch(
        graph: &'g CsrGraph,
        opts: &BfsOptions,
        transpose: Option<&'g CsrGraph>,
        sources: &[obfs_graph::VertexId],
    ) -> Self {
        assert!(
            opts.dedup == DedupMode::None,
            "owner-array dedup is incompatible with batched multi-source BFS"
        );
        let mut st = Self::new_with_transpose(graph, opts, transpose);
        let n = graph.num_vertices();
        st.batch = Some(BatchState::new(n, sources, opts.record_parents, opts.hybrid.is_some()));
        // Empty out the single-source arrays: batch mode must never touch
        // them, and a zero-length buffer turns any missed call site into
        // an immediate bounds panic instead of silent corruption.
        st.levels = RacyBuf::new(0);
        st.parents = None;
        // Compaction reads the single-source `level[]` array, which batch
        // mode just emptied — batched discovery is already bit-parallel,
        // so the option is documented as ignored here.
        st.compact = None;
        st
    }

    /// This level's input queue set.
    #[inline]
    pub fn qin(&self, parity: usize) -> &QueueSet {
        &self.queues[parity & 1]
    }

    /// This level's output queue set.
    #[inline]
    pub fn qout(&self, parity: usize) -> &QueueSet {
        &self.queues[(parity & 1) ^ 1]
    }

    /// Number of decentralized pools (1 for the centralized variants).
    #[inline]
    pub fn pools(&self) -> usize {
        self.pool_cursors.len()
    }

    /// Queue-index range `[start, end)` covered by pool `j` (BFSDL splits
    /// the `p` queues into `pools` contiguous groups).
    pub fn pool_range(&self, j: usize) -> (usize, usize) {
        let per = obfs_util::div_ceil(self.threads, self.pools());
        let start = (j * per).min(self.threads);
        let end = ((j + 1) * per).min(self.threads);
        (start, end)
    }

    /// Parallel init chunk for thread `tid`: clear levels / parents /
    /// owner for its share of the vertex range.
    pub fn init_chunk(&self, tid: usize) {
        let n = self.graph.num_vertices();
        let per = obfs_util::div_ceil(n, self.threads);
        let lo = (tid * per).min(n);
        let hi = ((tid + 1) * per).min(n);
        if let Some(b) = &self.batch {
            for v in lo..hi {
                for q in 0..b.k {
                    b.levels.set(v * b.k + q, UNVISITED);
                }
                if let Some(p) = &b.parents {
                    for q in 0..b.k {
                        p.set(v * b.k + q, INVALID_VERTEX);
                    }
                }
                b.visited_by.set(v, 0);
                b.pushed_at.set(v, UNVISITED);
            }
            return;
        }
        for v in lo..hi {
            self.levels.set(v, UNVISITED);
        }
        if let Some(p) = &self.parents {
            for v in lo..hi {
                p.set(v, INVALID_VERTEX);
            }
        }
        if let Some(o) = &self.owner {
            for v in lo..hi {
                o.set(v, 0);
            }
        }
    }

    // lint:region hot-path:discover
    /// The discovery fast path: if `w` looks unvisited, claim it (racy
    /// write — duplicates across threads are possible and benign), record
    /// parent/owner, and push it to `out`.
    #[inline]
    #[allow(clippy::too_many_arguments)] // hot path: flat args beat a param struct here
    pub fn try_discover(
        &self,
        w: VertexId,
        parent: VertexId,
        next_level: u32,
        out_queue_id: usize,
        out: &FrontierQueue,
        out_rear: &mut usize,
        ts: &mut ThreadStats,
    ) {
        if self.levels.get(w as usize) == UNVISITED {
            self.levels.set(w as usize, next_level);
            if let Some(p) = &self.parents {
                p.set(w as usize, parent);
            }
            if let Some(o) = &self.owner {
                // Arbitrary concurrent write: last store wins; pops will
                // honor whichever queue id survives.
                o.set(w as usize, out_queue_id as u32 + 1);
            }
            out.push(out_rear, w);
            ts.vertices_discovered += 1;
            if self.count_frontier_edges {
                ts.frontier_edges += self.graph.degree(w) as u64;
            }
        }
    }
    // lint:endregion

    // lint:region hot-path:discover-batch
    /// Batch mode: derive the membership bits of frontier vertex `v` at
    /// `level` — bit `q` set iff query `q`'s BFS reaches `v` at exactly
    /// this depth. Reads only per-query level slots published by the
    /// barrier that ended level `level - 1` (claims made *during* the
    /// current level carry `level + 1` and are excluded), so the result
    /// is race-free and identical for every worker that pops `v`.
    #[inline]
    pub fn frontier_bits(&self, v: VertexId, level: u32) -> u64 {
        let b = self.batch.as_ref().expect("batch state not armed");
        let row = b.levels.row(v as usize * b.k, b.k);
        let mut bits = 0u64;
        for (q, slot) in row.iter().enumerate() {
            bits |= u64::from(slot.load() == level) << q;
        }
        bits
    }

    /// The batch-mode discovery fast path: `fbits` are the popped
    /// parent's frontier bits ([`RunState::frontier_bits`]). Skips `w`
    /// with one membership-word load in the common all-seen case, claims
    /// each surviving (query, vertex) level slot with an idempotent racy
    /// store, ORs the membership word back with a plain store, and pushes
    /// `w` at most once per level per worker (see the
    /// [`crate::batch`] module docs for why every race here is benign).
    #[inline]
    #[allow(clippy::too_many_arguments)] // hot path: flat args beat a param struct here
    pub fn try_discover_batch(
        &self,
        w: VertexId,
        parent: VertexId,
        fbits: u64,
        next_level: u32,
        out: &FrontierQueue,
        out_rear: &mut usize,
        ts: &mut ThreadStats,
    ) {
        let b = self.batch.as_ref().expect("batch state not armed");
        let vis = b.visited_by.get(w as usize);
        // `& b.mask` makes the bound `q < k` below locally evident even
        // for a caller-corrupted `fbits`.
        let news = fbits & b.mask & !vis;
        if news == 0 {
            return;
        }
        let base = w as usize * b.k;
        let row = b.levels.row(base, b.k);
        let mut claimed = 0u64;
        let mut rem = news;
        while rem != 0 {
            let q = rem.trailing_zeros() as usize;
            rem &= rem - 1;
            // SAFETY: `rem ⊆ news ⊆ b.mask`, whose set bits are all
            // below `k == row.len()`, so `q` is in bounds.
            let slot = unsafe { row.get_unchecked(q) };
            // Revalidate against the level slot: the membership word is
            // only an under-approximation (racy ORs lose bits).
            if slot.load() == UNVISITED {
                slot.store(next_level);
                if let Some(p) = &b.parents {
                    p.set(base + q, parent);
                }
                claimed |= 1 << q;
            }
        }
        // OR back `news`, not just `claimed`: a bit that failed the slot
        // check was claimed by another worker whose store is (at latest)
        // barrier-published, so recording it only skips redundant work.
        b.visited_by.set(w as usize, vis | news);
        if claimed != 0 {
            ts.vertices_discovered += claimed.count_ones() as u64;
            if b.pushed_at.get(w as usize) != next_level {
                b.pushed_at.set(w as usize, next_level);
                out.push(out_rear, w);
                if self.count_frontier_edges {
                    ts.frontier_edges += self.graph.degree(w) as u64;
                }
            }
        }
    }
    // lint:endregion

    /// Pop-side checks shared by all variants. Returns `false` if the
    /// vertex should be skipped (duplicate under owner-array dedup).
    #[inline]
    pub fn pop_admit(&self, v: VertexId, from_queue: usize, ts: &mut ThreadStats) -> bool {
        if let Some(o) = &self.owner {
            if o.get(v as usize) != from_queue as u32 + 1 {
                ts.dedup_skips += 1;
                return false;
            }
        }
        true
    }

    // lint:region hot-path:explore
    /// Scan `v`'s full adjacency list, discovering into `out`.
    #[inline]
    pub fn explore_vertex(
        &self,
        v: VertexId,
        level: u32,
        out_queue_id: usize,
        out: &FrontierQueue,
        out_rear: &mut usize,
        ts: &mut ThreadStats,
    ) {
        let next = level + 1;
        let neigh = self.graph.neighbors(v);
        if self.batch.is_some() {
            // A replayed duplicate pop re-derives the same frontier bits,
            // so re-exploration (e.g. the watchdog sweep) stays idempotent.
            let fbits = self.frontier_bits(v, level);
            if fbits == 0 {
                return;
            }
            ts.edges_scanned += neigh.len() as u64;
            for &w in neigh {
                self.try_discover_batch(w, v, fbits, next, out, out_rear, ts);
            }
            return;
        }
        ts.edges_scanned += neigh.len() as u64;
        for &w in neigh {
            self.try_discover(w, v, next, out_queue_id, out, out_rear, ts);
        }
    }
    // lint:endregion

    /// Leader-only (barrier serial section): reset the watchdog for the
    /// upcoming level.
    ///
    /// # Safety
    /// Call only from a barrier serial section.
    pub unsafe fn watchdog_arm(&self) {
        if !self.abort_armed {
            return;
        }
        self.wd_abort.store(false, Ordering::Relaxed);
        *self.wd_deadline.get_mut() = self
            .opts
            .watchdog
            .and_then(|w| w.level_deadline)
            .map(|d| self.opts.clock.deadline_after(d));
    }

    /// Leader-only poll of the run's cancel token (any-context safe, but
    /// the *decision* it feeds must be made in a serial section so all
    /// workers exit the level loop on the same iteration).
    pub fn cancel_cause(&self) -> Option<CancelCause> {
        self.opts.cancel.as_ref().and_then(|t| t.check())
    }

    // lint:region hot-path:watchdog-poll
    /// Worker-side poll: true once this level has been declared degraded
    /// or the run cancelled (watchdog deadline passed, a worker exhausted
    /// a retry budget, or the cancel token fired). The caller stops
    /// dispatching new work and falls through to the level-end barrier,
    /// where the leader either sweeps the level (watchdog) or publishes
    /// the run abort (cancellation).
    #[inline]
    pub fn watchdog_tripped(&self) -> bool {
        if !self.abort_armed {
            return false;
        }
        if self.wd_abort.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(tok) = &self.opts.cancel {
            if tok.check().is_some() {
                // racy-ok: control-plane latch — every writer stores `true`
                self.wd_abort.store(true, Ordering::Relaxed);
                return true;
            }
        }
        // SAFETY: written only in barrier serial sections; the level in
        // progress only reads it.
        if let Some(dl) = unsafe { *self.wd_deadline.get() } {
            if self.opts.clock.now_ns() >= dl {
                // racy-ok: control-plane latch — every writer stores `true`
                self.wd_abort.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Worker-side retry accounting: bumps the caller's per-dispatch-loop
    /// retry counter and returns true when the level should be abandoned
    /// (budget exhausted, deadline passed, or already tripped elsewhere).
    #[inline]
    pub fn watchdog_retry(&self, retries: &mut u64) -> bool {
        if !self.abort_armed {
            return false;
        }
        *retries += 1;
        if let Some(max) = self.opts.watchdog.and_then(|w| w.max_fetch_retries) {
            if *retries >= max {
                // racy-ok: control-plane latch — every writer stores `true`
                self.wd_abort.store(true, Ordering::Relaxed);
                return true;
            }
        }
        self.watchdog_tripped()
    }
    // lint:endregion

    /// Leader-only serial sweep finishing a degraded level: re-explore
    /// every flattened work-list vertex (hub phase / EdgeCL) and every
    /// surviving input-queue slot. Level writes are same-valued within a
    /// level and [`RunState::try_discover`] skips visited vertices, so
    /// the sweep is idempotent with whatever the parallel phase already
    /// did — correct no matter where each variant was interrupted.
    ///
    /// Counts edge scans and discoveries but not pops: swept entries were
    /// never dispatched, and the per-variant pop counters stay meaningful.
    ///
    /// # Safety
    /// Call only from a barrier serial section.
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn serial_finish_level(
        &self,
        parity: usize,
        level: u32,
        tid: usize,
        out: &FrontierQueue,
        out_rear: &mut usize,
        ts: &mut ThreadStats,
    ) {
        for &h in self.flat_vertices.get().iter() {
            self.explore_vertex(h, level, tid, out, out_rear, ts);
        }
        let qin = self.qin(parity);
        for k in 0..self.threads {
            let q = qin.queue(k);
            for i in 0..q.rear().min(q.capacity()) {
                let s = q.slot(i);
                if s == EMPTY_SLOT {
                    continue;
                }
                self.explore_vertex(decode(s), level, tid, out, out_rear, ts);
            }
        }
    }

    /// Record whether popping `v` at `level` is a duplicate exploration
    /// (its level was already set by this or another thread this level).
    /// Call after the pop, before exploring.
    #[inline]
    pub fn note_pop(&self, v: VertexId, level: u32, ts: &mut ThreadStats) {
        ts.vertices_explored += 1;
        if let Some(b) = &self.batch {
            // Batch mode has no single level word to compare against; a
            // pushed_at mismatch is the analogous signal that this slot
            // is a duplicate push or a stale segment replay.
            if b.pushed_at.get(v as usize) != level {
                ts.duplicate_explorations += 1;
            }
            return;
        }
        // A slot holding v at level d implies level[v] == d was set when it
        // was pushed; observing anything else means another queue also
        // carried v (duplicate push) or a stale segment replay.
        if self.levels.get(v as usize) != level {
            ts.duplicate_explorations += 1;
        }
    }

    /// Rebuild thread `tid`'s share of the frontier bitmap from the
    /// `level[]` array: bit `v` is set iff `level[v] == level`.
    ///
    /// The bitmap is partitioned by *word*, so each worker is the only
    /// writer of its words — no races at all. Call between the barrier
    /// that published this level's `level[]` stores and the barrier that
    /// starts the bottom-up probes.
    pub fn fill_bitmap_chunk(&self, level: u32, tid: usize) {
        let hyb = self.hyb.as_ref().expect("hybrid state not armed");
        if let Some(b) = &self.batch {
            // Batch mode: rebuild per-vertex frontier *words* instead of
            // the single-source bitmap. One whole u64 per vertex, so the
            // vertex partition itself makes each word single-writer.
            let fb = b.front_by.as_ref().expect("hybrid batch state not armed");
            let n = self.graph.num_vertices();
            let per = obfs_util::div_ceil(n, self.threads);
            let lo = (tid * per).min(n);
            let hi = ((tid + 1) * per).min(n);
            for v in lo..hi {
                // visited_by is an under-approximation, but at a level
                // barrier it can only *miss* claimed bits — a vertex with
                // any claimed slot has a nonzero word (every OR writes a
                // nonzero value), so zero words are exactly never-claimed
                // vertices and the k slot loads can be skipped.
                let w = if b.visited_by.get(v) == 0 {
                    0
                } else {
                    self.frontier_bits(v as VertexId, level)
                };
                fb.set(v, w);
            }
            return;
        }
        let words = hyb.bitmap.word_count();
        let per = obfs_util::div_ceil(words, self.threads);
        let wlo = (tid * per).min(words);
        let whi = ((tid + 1) * per).min(words);
        let n = self.graph.num_vertices();
        for wi in wlo..whi {
            let base = wi * BITMAP_WORD_BITS;
            let lim = BITMAP_WORD_BITS.min(n - base.min(n));
            let mut bits: u32 = 0;
            // Out-of-range tail bits start *set* in the visited word, so
            // the wordwise kernel's candidate scan (`!visited`) never
            // yields a vertex >= n.
            let mut vis: u32 = if lim == BITMAP_WORD_BITS { 0 } else { !0u32 << lim };
            for b in 0..lim {
                let l = self.levels.get(base + b);
                if l == level {
                    bits |= 1 << b;
                }
                if l != UNVISITED {
                    vis |= 1 << b;
                }
            }
            hyb.bitmap.set_word(wi, bits);
            hyb.visited.set_word(wi, vis);
        }
    }

    // lint:region hot-path:compact
    /// Compaction pass 1 (fill / reduce) for thread `tid`: rebuild this
    /// worker's chunk-aligned share of the compaction bitmap from the
    /// `level[]` stores the last barrier published, record one popcount
    /// per chunk, and publish the block total. Word-partitioned by whole
    /// chunks, so every bitmap word, chunk count and total slot has
    /// exactly one writer; call between the barrier that published
    /// `level[]` and the barrier that starts the materialize pass.
    pub fn compact_fill_chunk(&self, level: u32, tid: usize) {
        let cs = self.compact.as_ref().expect("compaction state not armed");
        let words = cs.bitmap.word_count();
        let chunks = obfs_util::div_ceil(words, crate::scan::COMPACT_CHUNK_WORDS);
        let (clo, chi) = crate::scan::block_range(chunks, self.threads, tid);
        let n = self.graph.num_vertices();
        let mut total = 0u64;
        for c in clo..chi {
            let wlo = c * crate::scan::COMPACT_CHUNK_WORDS;
            let whi = ((c + 1) * crate::scan::COMPACT_CHUNK_WORDS).min(words);
            for wi in wlo..whi {
                let base = wi * BITMAP_WORD_BITS;
                let mut bits: u32 = 0;
                for b in 0..BITMAP_WORD_BITS.min(n - base.min(n)) {
                    if self.levels.get(base + b) == level {
                        bits |= 1 << b;
                    }
                }
                cs.bitmap.set_word(wi, bits);
            }
            let cnt = crate::scan::popcount_words(self.scan_backend, &cs.bitmap, wlo, whi);
            // racy-ok: single-writer — this chunk belongs to `tid` alone
            cs.chunk_counts.set(c, cnt as u32);
            total += cnt;
        }
        // racy-ok: single-writer — own block-total slot
        cs.block_totals.set(tid, total as u32);
    }

    /// Compaction passes 2+3 (scan / downsweep) for thread `tid`: compute
    /// the exclusive prefix of the published block totals (replicated
    /// O(p) work — no serial section), then emit this worker's chunks'
    /// set bits into its disjoint range of the frontier array, advancing
    /// by the per-chunk popcounts of pass 1. Call after the barrier that
    /// published the pass-1 counts; the output is ascending within each
    /// chunk with chunks in index order, so the array is a stable
    /// permutation-free listing of the level's vertices.
    pub fn compact_materialize(&self, tid: usize) {
        let cs = self.compact.as_ref().expect("compaction state not armed");
        let words = cs.bitmap.word_count();
        let chunks = obfs_util::div_ceil(words, crate::scan::COMPACT_CHUNK_WORDS);
        let (clo, chi) = crate::scan::block_range(chunks, self.threads, tid);
        let totals: Vec<u64> =
            (0..self.threads).map(|k| u64::from(cs.block_totals.get(k))).collect();
        let mut off = crate::scan::block_prefix(&totals, tid) as usize;
        for c in clo..chi {
            let wlo = c * crate::scan::COMPACT_CHUNK_WORDS;
            let whi = ((c + 1) * crate::scan::COMPACT_CHUNK_WORDS).min(words);
            let start = off;
            crate::scan::for_each_set(self.scan_backend, &cs.bitmap, wlo, whi, |v| {
                // racy-ok: single-writer — disjoint per-thread output range
                cs.frontier.set(off, v as u32);
                off += 1;
            });
            debug_assert_eq!(
                (off - start) as u32,
                cs.chunk_counts.get(c),
                "chunk emit must match its pass-1 popcount"
            );
        }
        debug_assert_eq!(off as u64, crate::scan::block_prefix(&totals, tid) + totals[tid]);
    }

    /// Consume a compacted level for thread `tid`: a perfectly balanced
    /// static partition of the materialized frontier array, exploring
    /// through the ordinary discovery path (discoveries land in this
    /// worker's own output queue, so queue state after a compacted level
    /// is exactly what segment dispatch would have produced). No
    /// `pop_admit` check: the array lists each frontier vertex exactly
    /// once, so there are no duplicates to dedup. Call after the barrier
    /// that published the materialize pass.
    pub fn compact_consume(
        &self,
        level: u32,
        tid: usize,
        out: &FrontierQueue,
        out_rear: &mut usize,
        ts: &mut ThreadStats,
    ) {
        let cs = self.compact.as_ref().expect("compaction state not armed");
        let total: u64 = (0..self.threads).map(|k| u64::from(cs.block_totals.get(k))).sum();
        let (lo, hi) = crate::scan::block_range(total as usize, self.threads, tid);
        for i in lo..hi {
            if i & 0xFF == 0 && self.watchdog_tripped() {
                // Abandon the partition; the input queues were never
                // consumed, so the leader sweep re-explores everything —
                // idempotent with whatever this pass already did.
                return;
            }
            let v = cs.frontier.get(i);
            self.note_pop(v, level, ts);
            self.explore_vertex(v, level, tid, out, out_rear, ts);
        }
    }
    // lint:endregion

    // lint:region hot-path:bottom-up
    /// One bottom-up level for thread `tid`: scan this worker's
    /// word-aligned share of the vertex range, and for every unvisited
    /// vertex probe its in-edges until a parent on the current frontier
    /// (bitmap bit set) is found.
    ///
    /// The vertex partition is word-aligned and static, so each vertex —
    /// and each `level[]`/`parents[]`/queue slot it writes — has exactly
    /// one writer: the kernel needs no atomics *and* has no races to be
    /// optimistic about. Discoveries go through the same plain stores as
    /// [`RunState::try_discover`] and land in this worker's own output
    /// queue, so queue state after a bottom-up level is exactly what a
    /// top-down level would need (switch-back and the watchdog sweep work
    /// unchanged).
    pub fn bottom_up_level(
        &self,
        level: u32,
        tid: usize,
        out: &FrontierQueue,
        out_rear: &mut usize,
        ts: &mut ThreadStats,
    ) {
        let hyb = self.hyb.as_ref().expect("hybrid state not armed");
        if self.batch.is_some() {
            self.bottom_up_level_batch(level, tid, out, out_rear, ts);
            return;
        }
        let tg = hyb.transpose.graph();
        let n = self.graph.num_vertices();
        let words = hyb.bitmap.word_count();
        let per = obfs_util::div_ceil(words, self.threads);
        let wlo = (tid * per).min(words);
        let whi = ((tid + 1) * per).min(words);
        let next = level + 1;
        match self.scan_backend {
            crate::dispatch::ScanBackend::Wordwise => {
                // Candidate scan over the visited bitmap's complement:
                // fully-visited words are skipped outright, and the
                // pre-set out-of-range tail bits mask the last word.
                for wi in wlo..whi {
                    if wi & 0x7 == 0 && self.watchdog_tripped() {
                        // Abandon the scan; the leader sweep re-explores
                        // the (never-consumed) input queues top-down,
                        // which is idempotent with everything done so far.
                        return;
                    }
                    let cand = !hyb.visited.word(wi);
                    if cand == 0 {
                        continue;
                    }
                    crate::scan::for_each_set_in_word(cand, wi * BITMAP_WORD_BITS, |v| {
                        self.bottom_up_probe(hyb, tg, v, next, tid, out, out_rear, ts);
                    });
                }
            }
            crate::dispatch::ScanBackend::Scalar => {
                // Per-vertex walk checking `level[]` directly. Both
                // checks see the same set: within a bottom-up level each
                // worker writes only vertices of its own range, and only
                // when it probes them — so the level-start snapshot in
                // `visited` and this live read always agree.
                let lo = wlo * BITMAP_WORD_BITS;
                let hi = (whi * BITMAP_WORD_BITS).min(n);
                for v in lo..hi {
                    if v & 0xFF == 0 && self.watchdog_tripped() {
                        // Abandon the scan (see the wordwise arm).
                        return;
                    }
                    if self.levels.get(v) != UNVISITED {
                        continue;
                    }
                    self.bottom_up_probe(hyb, tg, v, next, tid, out, out_rear, ts);
                }
            }
        }
    }

    /// Probe one unvisited vertex's in-edges for a parent on the current
    /// frontier bitmap — the inner step shared by both bottom-up scan
    /// kernels (so backend choice can never change what gets discovered).
    #[inline]
    #[allow(clippy::too_many_arguments)] // hot path: flat args beat a param struct here
    fn bottom_up_probe(
        &self,
        hyb: &HybridState<'_>,
        tg: &CsrGraph,
        v: usize,
        next: u32,
        tid: usize,
        out: &FrontierQueue,
        out_rear: &mut usize,
        ts: &mut ThreadStats,
    ) {
        let mut probes = 0u64;
        for &u in tg.neighbors(v as VertexId) {
            probes += 1;
            if hyb.bitmap.test(u as usize) {
                // racy-ok: single-writer — `v` is in this worker's static word-aligned range
                self.levels.set(v, next);
                if let Some(p) = &self.parents {
                    // racy-ok: single-writer — same static vertex partition
                    p.set(v, u);
                }
                if let Some(o) = &self.owner {
                    // racy-ok: single-writer — same static vertex partition
                    o.set(v, tid as u32 + 1);
                }
                out.push(out_rear, v as VertexId);
                ts.vertices_discovered += 1;
                if self.count_frontier_edges {
                    ts.frontier_edges += self.graph.degree(v as VertexId) as u64;
                }
                break;
            }
        }
        ts.edges_scanned += probes;
    }

    /// Batch-mode bottom-up level: for every vertex in this worker's
    /// static chunk, probe in-edges for parents on *any* missing query's
    /// frontier, accumulating found bits until all missing queries are
    /// satisfied or the in-edge list is exhausted (no early break on the
    /// first hit — different queries may need different parents).
    ///
    /// The vertex partition makes this worker the only writer of the
    /// vertex's level row, membership word and queue slot, so like the
    /// single-source kernel it has no races at all; `visited_by` reads
    /// are exact here (barrier-published, single writer since).
    fn bottom_up_level_batch(
        &self,
        level: u32,
        tid: usize,
        out: &FrontierQueue,
        out_rear: &mut usize,
        ts: &mut ThreadStats,
    ) {
        let hyb = self.hyb.as_ref().expect("hybrid state not armed");
        let b = self.batch.as_ref().expect("batch state not armed");
        let fb = b.front_by.as_ref().expect("hybrid batch state not armed");
        let tg = hyb.transpose.graph();
        let n = self.graph.num_vertices();
        let per = obfs_util::div_ceil(n, self.threads);
        let lo = (tid * per).min(n);
        let hi = ((tid + 1) * per).min(n);
        let next = level + 1;
        for v in lo..hi {
            if v & 0xFF == 0 && self.watchdog_tripped() {
                // Abandon the scan; the leader sweep re-explores the
                // (never-consumed) input queues top-down, which is
                // idempotent with everything done so far.
                return;
            }
            let vis = b.visited_by.get(v);
            let miss = b.mask & !vis;
            if miss == 0 {
                continue;
            }
            let base = v * b.k;
            let mut found = 0u64;
            let mut probes = 0u64;
            for &u in tg.neighbors(v as VertexId) {
                probes += 1;
                let mut hits = fb.get(u as usize) & miss & !found;
                while hits != 0 {
                    let q = hits.trailing_zeros() as usize;
                    hits &= hits - 1;
                    // visited_by may under-approximate: a bit claimed in
                    // an earlier level can be missing from `vis`, so the
                    // slot check is still required before claiming.
                    if b.levels.get(base + q) == UNVISITED {
                        b.levels.set(base + q, next);
                        if let Some(p) = &b.parents {
                            p.set(base + q, u);
                        }
                        found |= 1 << q;
                    }
                }
                if (miss & !found) == 0 {
                    break;
                }
            }
            ts.edges_scanned += probes;
            if found != 0 {
                b.visited_by.set(v, vis | found);
                b.pushed_at.set(v, next);
                out.push(out_rear, v as VertexId);
                ts.vertices_discovered += found.count_ones() as u64;
                if self.count_frontier_edges {
                    ts.frontier_edges += self.graph.degree(v as VertexId) as u64;
                }
            }
        }
    }
    // lint:endregion
}

#[cfg(test)]
mod tests {
    use super::*;
    use obfs_graph::gen;

    fn opts(threads: usize) -> BfsOptions {
        BfsOptions { threads, ..Default::default() }
    }

    #[test]
    fn init_chunks_cover_everything() {
        let g = gen::path(103);
        let st = RunState::new(&g, &opts(4));
        for t in 0..4 {
            st.init_chunk(t);
        }
        for v in 0..103 {
            assert_eq!(st.levels.get(v), UNVISITED);
        }
    }

    #[test]
    fn pool_ranges_partition_threads() {
        let g = gen::path(10);
        let o = BfsOptions { threads: 7, pools: 3, ..Default::default() };
        let st = RunState::new(&g, &o);
        assert_eq!(st.pools(), 3);
        let mut covered = [false; 7];
        for j in 0..3 {
            let (s, e) = st.pool_range(j);
            #[allow(clippy::needless_range_loop)] // q is the queue id under test
            for q in s..e {
                assert!(!covered[q], "queue {q} in two pools");
                covered[q] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "pools must cover all queues");
    }

    #[test]
    fn pools_clamped_to_threads() {
        let g = gen::path(10);
        let o = BfsOptions { threads: 2, pools: 100, ..Default::default() };
        let st = RunState::new(&g, &o);
        assert_eq!(st.pools(), 2);
    }

    #[test]
    fn try_discover_sets_level_once_per_thread_view() {
        let g = gen::star(10);
        let st = RunState::new(&g, &opts(1));
        st.init_chunk(0);
        let out = st.qout(0).queue(0);
        let mut rear = 0;
        let mut ts = ThreadStats::default();
        st.try_discover(3, 0, 1, 0, out, &mut rear, &mut ts);
        st.try_discover(3, 0, 1, 0, out, &mut rear, &mut ts);
        assert_eq!(st.levels.get(3), 1);
        assert_eq!(rear, 1, "second discover must be a no-op");
        assert_eq!(ts.vertices_discovered, 1);
    }

    #[test]
    fn owner_dedup_admits_only_recorded_queue() {
        let g = gen::star(10);
        let o = BfsOptions { threads: 2, dedup: DedupMode::OwnerArray, ..Default::default() };
        let st = RunState::new(&g, &o);
        st.init_chunk(0);
        st.init_chunk(1);
        let out = st.qout(0).queue(1);
        let mut rear = 0;
        let mut ts = ThreadStats::default();
        st.try_discover(5, 0, 1, 1, out, &mut rear, &mut ts);
        assert!(st.pop_admit(5, 1, &mut ts));
        assert!(!st.pop_admit(5, 0, &mut ts));
        assert_eq!(ts.dedup_skips, 1);
    }

    #[test]
    fn explore_vertex_discovers_all_neighbors() {
        let g = gen::complete(5);
        let st = RunState::new(&g, &opts(1));
        st.init_chunk(0);
        st.levels.set(0, 0);
        let out = st.qout(0).queue(0);
        let mut rear = 0;
        let mut ts = ThreadStats::default();
        st.explore_vertex(0, 0, 0, out, &mut rear, &mut ts);
        assert_eq!(rear, 4);
        assert_eq!(ts.edges_scanned, 4);
        for v in 1..5 {
            assert_eq!(st.levels.get(v), 1);
        }
    }

    #[test]
    fn note_pop_flags_duplicates() {
        let g = gen::path(3);
        let st = RunState::new(&g, &opts(1));
        st.init_chunk(0);
        st.levels.set(1, 1);
        let mut ts = ThreadStats::default();
        st.note_pop(1, 1, &mut ts);
        assert_eq!(ts.duplicate_explorations, 0);
        st.note_pop(1, 2, &mut ts);
        assert_eq!(ts.duplicate_explorations, 1);
        assert_eq!(ts.vertices_explored, 2);
    }

    #[test]
    #[should_panic(expected = "at least one vertex")]
    fn empty_graph_rejected() {
        let g = CsrGraph::from_edges(0, &[]);
        let _ = RunState::new(&g, &opts(1));
    }
}
