//! Run-level flight-recorder aggregation, chrome://tracing export, and
//! post-mortem analysis.
//!
//! The per-thread rings themselves live in [`obfs_sync::flight`]; this
//! module holds what the driver assembles out of them after a run
//! ([`FlightRecording`]), a hand-rolled exporter to the Chrome Trace
//! Event JSON format (which both `chrome://tracing` and Perfetto load
//! directly), the inverse parser ([`parse_chrome_trace`]) that
//! reconstructs a recording from an exported file exactly, and the
//! [`analysis`] engine that turns a recording into a deterministic
//! [`analysis::Profile`]. The exporter/parser pair is dependency-free
//! on purpose: the workspace builds offline.
//!
//! # Lossless export
//!
//! Every non-metadata event carries its raw `{k, level, a, b}` payload
//! in `args` (the kind code `k` included), and every worker emits
//! `thread_name` metadata plus a `ring-dropped` counter sample — so
//! `parse_chrome_trace(&to_chrome_trace(r)) == r` holds exactly, and a
//! recorded run can be re-profiled offline from nothing but the trace
//! file.

pub mod analysis;

pub use obfs_sync::flight::{kind, FlightEvent, RingDump};

use obfs_util::json::Json;

/// Default ring capacity (events per worker) used by the CLI's `--trace`
/// flag. 16Ki events × 32 B = 512 KiB per worker — enough to hold every
/// level/barrier/steal event of a medium traversal without wrapping.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 16 * 1024;

/// The drained event rings of one run, one entry per worker (index =
/// thread id).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlightRecording {
    /// Per-worker dumps, oldest event first within each worker.
    pub workers: Vec<RingDump>,
}

impl FlightRecording {
    /// Total surviving events across all workers.
    pub fn total_events(&self) -> usize {
        self.workers.iter().map(|w| w.events.len()).sum()
    }

    /// Events overwritten by full rings, summed across all workers.
    /// Nonzero means the recording is a *suffix window* of the run and
    /// derived totals (event counts, utilization) undercount the early
    /// part — [`analysis::Profile`] surfaces this per worker.
    pub fn dropped(&self) -> u64 {
        self.workers.iter().map(|w| w.dropped).sum()
    }

    /// Alias of [`FlightRecording::dropped`] (older name).
    pub fn total_dropped(&self) -> u64 {
        self.dropped()
    }

    /// Number of surviving events of one [`kind`] across all workers.
    pub fn count(&self, kind: u16) -> usize {
        self.workers
            .iter()
            .map(|w| w.events.iter().filter(|e| e.kind == kind).count())
            .sum()
    }
}

/// Name of the per-worker dropped-events counter track in the exported
/// trace (also the parser's key for reconstructing [`RingDump::dropped`]).
const DROPPED_COUNTER: &str = "ring-dropped";

/// Render a recording as Chrome Trace Event JSON (the
/// `{"traceEvents": [...]}` object form). Paired events (level spans,
/// barrier waits, worker lifetimes) become `B`/`E` duration events so
/// the viewer draws them as bars; everything else becomes an instant
/// event. Emits `process_name`/`thread_name` metadata so workers are
/// labeled in chrome://tracing, a `ring-dropped` counter per worker,
/// and the full `{k, level, a, b}` payload on every event — enough for
/// [`parse_chrome_trace`] to reconstruct the recording exactly.
pub fn to_chrome_trace(rec: &FlightRecording) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(256 + rec.total_events() * 112);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"obfs\"}}");
    for (tid, worker) in rec.workers.iter().enumerate() {
        write!(
            out,
            ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"name\":\"worker {tid}\"}}}}"
        )
        .unwrap();
        write!(
            out,
            ",{{\"name\":\"{DROPPED_COUNTER}\",\"ph\":\"C\",\"ts\":0,\"pid\":0,\
             \"tid\":{tid},\"args\":{{\"dropped\":{}}}}}",
            worker.dropped
        )
        .unwrap();
        for e in &worker.events {
            out.push(',');
            push_event(&mut out, tid, e);
        }
    }
    out.push_str("]}");
    out
}

fn push_event(out: &mut String, tid: usize, e: &FlightEvent) {
    use std::fmt::Write;
    let (name, ph): (String, char) = match e.kind {
        kind::LEVEL_START => (format!("level {}", e.level), 'B'),
        kind::LEVEL_END => (format!("level {}", e.level), 'E'),
        kind::BARRIER_ENTER => ("barrier".to_string(), 'B'),
        kind::BARRIER_EXIT => ("barrier".to_string(), 'E'),
        kind::WORKER_BEGIN => ("worker".to_string(), 'B'),
        kind::WORKER_END => ("worker".to_string(), 'E'),
        k => (kind::name(k).to_string(), 'i'),
    };
    write!(
        out,
        "{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":0,\"tid\":{}",
        name, ph, e.ts_us, tid
    )
    .unwrap();
    if ph == 'i' {
        out.push_str(",\"s\":\"t\"");
    }
    // Raw payload on every event (kind code included) so the trace file
    // is a lossless serialization of the recording; viewers show it as
    // drill-down args and ignore keys they don't know.
    write!(
        out,
        ",\"args\":{{\"k\":{},\"level\":{},\"a\":{},\"b\":{}}}}}",
        e.kind, e.level, e.a, e.b
    )
    .unwrap();
}

/// Reconstruct a [`FlightRecording`] from Chrome Trace Event JSON
/// written by [`to_chrome_trace`]. Inverse of the exporter:
/// `parse_chrome_trace(&to_chrome_trace(rec)) == rec` exactly. Events
/// missing the `args.k` payload (a trace from some other tool) are an
/// error — this parser exists to re-profile our own recordings offline.
pub fn parse_chrome_trace(text: &str) -> Result<FlightRecording, String> {
    let doc = Json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("trace: missing traceEvents array")?;
    let mut workers: Vec<RingDump> = Vec::new();
    fn ensure(workers: &mut Vec<RingDump>, tid: usize) {
        if workers.len() <= tid {
            workers.resize(tid + 1, RingDump::default());
        }
    }
    for (i, ev) in events.iter().enumerate() {
        let at = || format!("traceEvents[{i}]");
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{}: no ph", at()))?;
        match ph {
            "M" => {
                // thread_name metadata sizes the worker list, so
                // trailing idle workers survive the round-trip.
                if ev.get("name").and_then(Json::as_str) == Some("thread_name") {
                    if let Some(tid) = ev.get("tid").and_then(Json::as_u64) {
                        ensure(&mut workers, tid as usize);
                    }
                }
            }
            "C" => {
                if ev.get("name").and_then(Json::as_str) != Some(DROPPED_COUNTER) {
                    continue; // foreign counter track: ignore
                }
                let tid = ev
                    .get("tid")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("{}: counter without tid", at()))?
                    as usize;
                let dropped = ev
                    .get("args")
                    .and_then(|a| a.get("dropped"))
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("{}: {DROPPED_COUNTER} without args.dropped", at()))?;
                ensure(&mut workers, tid);
                workers[tid].dropped = dropped;
            }
            _ => {
                let tid = ev
                    .get("tid")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("{}: event without tid", at()))?
                    as usize;
                let ts_us = ev
                    .get("ts")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("{}: event without integer ts", at()))?;
                let args = ev
                    .get("args")
                    .ok_or_else(|| format!("{}: event without args (not an obfs trace?)", at()))?;
                let field = |key: &str| {
                    args.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("{}: args.{key} missing or not an integer", at()))
                };
                let k = field("k")?;
                if k > u16::MAX as u64 {
                    return Err(format!("{}: kind code {k} out of range", at()));
                }
                let level = field("level")?;
                if level > u32::MAX as u64 {
                    return Err(format!("{}: level {level} out of range", at()));
                }
                ensure(&mut workers, tid);
                workers[tid].events.push(FlightEvent {
                    ts_us,
                    kind: k as u16,
                    level: level as u32,
                    a: field("a")?,
                    b: field("b")?,
                });
            }
        }
    }
    Ok(FlightRecording { workers })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts_us: u64, kind: u16, level: u32, a: u64, b: u64) -> FlightEvent {
        FlightEvent { ts_us, kind, level, a, b }
    }

    #[test]
    fn counts_span_workers() {
        let rec = FlightRecording {
            workers: vec![
                RingDump {
                    events: vec![ev(0, kind::SEGMENT_FETCH, 0, 0, 4), ev(1, kind::FAULT, 0, 1, 2)],
                    dropped: 3,
                },
                RingDump { events: vec![ev(2, kind::SEGMENT_FETCH, 1, 0, 8)], dropped: 0 },
            ],
        };
        assert_eq!(rec.total_events(), 3);
        assert_eq!(rec.dropped(), 3);
        assert_eq!(rec.total_dropped(), 3);
        assert_eq!(rec.count(kind::SEGMENT_FETCH), 2);
        assert_eq!(rec.count(kind::FAULT), 1);
        assert_eq!(rec.count(kind::STEAL_SUCCESS), 0);
    }

    fn sample_recording() -> FlightRecording {
        FlightRecording {
            workers: vec![
                RingDump {
                    events: vec![
                        ev(10, kind::WORKER_BEGIN, 0, 0, 0),
                        ev(11, kind::LEVEL_START, 2, 5, 0),
                        ev(12, kind::STEAL_SUCCESS, 2, 1, 16),
                        ev(13, kind::LEVEL_END, 2, 0, 0),
                        ev(14, kind::WORKER_END, 0, 0, 0),
                    ],
                    dropped: 0,
                },
                RingDump { events: vec![ev(12, kind::FETCH_RETRY, 2, 3, 0)], dropped: 7 },
                // Idle worker: no events, nothing dropped.
                RingDump::default(),
            ],
        }
    }

    #[test]
    fn chrome_export_shape() {
        let json = to_chrome_trace(&sample_recording());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"level 2\",\"ph\":\"B\""));
        assert!(json.contains("\"name\":\"level 2\",\"ph\":\"E\""));
        assert!(json.contains("\"name\":\"steal-success\",\"ph\":\"i\""));
        assert!(json.contains(&format!(
            "\"args\":{{\"k\":{},\"level\":2,\"a\":1,\"b\":16}}",
            kind::STEAL_SUCCESS
        )));
        // Balanced braces/brackets (cheap well-formedness proxy; the
        // JSON parser does the real round-trip below).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn chrome_export_labels_workers() {
        let json = to_chrome_trace(&sample_recording());
        assert!(json.contains(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"obfs\"}}"
        ));
        for tid in 0..3 {
            assert!(json.contains(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":\"worker {tid}\"}}}}"
            )));
        }
        assert!(json.contains("\"name\":\"ring-dropped\",\"ph\":\"C\""));
        assert!(json.contains("\"args\":{\"dropped\":7}"));
    }

    #[test]
    fn export_parse_round_trip_is_exact() {
        let rec = sample_recording();
        let parsed = parse_chrome_trace(&to_chrome_trace(&rec)).unwrap();
        assert_eq!(parsed, rec);
        // Twice through is still a fixed point.
        assert_eq!(to_chrome_trace(&parsed), to_chrome_trace(&rec));
    }

    #[test]
    fn empty_recording_round_trips() {
        let json = to_chrome_trace(&FlightRecording::default());
        assert!(json.contains("process_name"));
        assert_eq!(parse_chrome_trace(&json).unwrap(), FlightRecording::default());
    }

    #[test]
    fn parser_rejects_foreign_traces() {
        // Well-formed chrome trace, but without our args payload.
        let foreign = r#"{"traceEvents":[{"name":"x","ph":"B","ts":1,"pid":0,"tid":0}]}"#;
        let err = parse_chrome_trace(foreign).unwrap_err();
        assert!(err.contains("args"), "{err}");
        assert!(parse_chrome_trace("not json").is_err());
        assert!(parse_chrome_trace("{}").unwrap_err().contains("traceEvents"));
    }
}
