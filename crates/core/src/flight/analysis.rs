//! Post-mortem trace profiler: turn a [`FlightRecording`] into a
//! deterministic [`Profile`].
//!
//! The flight recorder answers "what happened"; this module answers
//! "where did the time go". Given the drained rings of one run — live
//! from the driver or re-read from an exported trace file via
//! [`super::parse_chrome_trace`] — it derives:
//!
//! * **Per-worker utilization**: each worker's recorded span is split
//!   into *work*, *steal-search*, and *barrier-wait* time by classifying
//!   the gap between consecutive events by the event that terminates it
//!   (a gap ending in `BARRIER_EXIT` was spent waiting at the barrier, a
//!   gap ending in a steal event was spent probing victims, everything
//!   else is attributed to useful work). This is exact for barrier time
//!   (enter/exit bracket the wait) and a per-event-granularity
//!   approximation for the rest — at segment granularity, not per edge,
//!   which matches the recorder's taxonomy.
//! * **Per-level rates**: fetches, sanity-check retries, stale aborts,
//!   steals, faults, and degraded sweeps per BFS level, with the level's
//!   wall span (first `LEVEL_START` to last `LEVEL_END` across workers).
//! * **Steal-pressure timeline**: every failed steal's distance to the
//!   *next* barrier entry on the same worker, bucketed in a
//!   [`LogHistogram`] — failures piling up just before the barrier are
//!   the end-of-level tail the paper's work-stealing variants target.
//! * **Duplicate-exploration attribution**: stale aborts grouped by the
//!   queue they hit (`STALE_ABORT`'s `a` payload), i.e. *which
//!   dispatcher queues* the optimistic protocol re-walked.
//!
//! Everything here is a pure function of the recording: same recording
//! in, byte-identical [`Profile::to_json`] out. That is what makes
//! `obfs-cli analyze` replayable — a trace captured on one machine can
//! be re-profiled anywhere, forever, with identical output.

use super::{kind, FlightRecording};
use obfs_util::json::Json;
use obfs_util::LogHistogram;
use std::collections::BTreeMap;

/// Time breakdown and event counts for one worker.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerProfile {
    /// Thread id (index into [`FlightRecording::workers`]).
    pub tid: usize,
    /// Surviving events in this worker's ring.
    pub events: usize,
    /// Events the ring overwrote (recording is a suffix window if > 0).
    pub dropped: u64,
    /// Recorded span: first to last event timestamp, microseconds.
    pub total_us: u64,
    /// Gap time attributed to useful work (segment consumption).
    pub work_us: u64,
    /// Gap time attributed to steal search (gaps ending in a steal
    /// success or failure).
    pub steal_us: u64,
    /// Gap time attributed to barrier waiting (gaps ending in
    /// `BARRIER_EXIT`; for the barrier leader this includes the serial
    /// section it runs while the others spin).
    pub barrier_us: u64,
    /// Segments fetched.
    pub segments: u64,
    /// Successful steals.
    pub steal_success: u64,
    /// Failed steal attempts.
    pub steal_fail: u64,
    /// Stale-slot walk aborts.
    pub stale_aborts: u64,
}

impl WorkerProfile {
    /// `work_us / total_us` in percent (0 when nothing was recorded).
    pub fn utilization_pct(&self) -> f64 {
        pct(self.work_us, self.total_us)
    }
}

/// Aggregated per-level activity across all workers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LevelProfile {
    /// BFS level.
    pub level: u32,
    /// Wall span of the level: first `LEVEL_START` to last `LEVEL_END`
    /// across workers (0 if either end is missing from the window).
    pub duration_us: u64,
    /// Segments fetched.
    pub fetches: u64,
    /// Sanity-check fetch retries (optimistic dispatchers only).
    pub retries: u64,
    /// Stale-slot walk aborts.
    pub stale_aborts: u64,
    /// Successful steals.
    pub steal_success: u64,
    /// Failed steal attempts.
    pub steal_fail: u64,
    /// Chaos faults injected.
    pub faults: u64,
    /// 1 if the watchdog degraded this level to the serial sweep.
    pub degraded: u64,
}

impl LevelProfile {
    /// Retries per fetch — the optimistic protocol's contention rate.
    pub fn retry_rate(&self) -> f64 {
        if self.fetches == 0 {
            0.0
        } else {
            self.retries as f64 / self.fetches as f64
        }
    }
}

/// The derived profile: a pure, deterministic function of a
/// [`FlightRecording`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// One entry per worker, in thread-id order.
    pub workers: Vec<WorkerProfile>,
    /// One entry per BFS level seen in the window, ascending.
    pub levels: Vec<LevelProfile>,
    /// Distance (µs) from each failed steal to the next barrier entry
    /// on the same worker — the "how close to the end of the level do
    /// steals start failing" timeline.
    pub steal_fail_distance_us: LogHistogram,
    /// Stale aborts grouped by the queue they hit, ascending queue id:
    /// which dispatcher queues the optimistic protocol re-walked.
    pub stale_by_queue: Vec<(u64, u64)>,
    /// Total surviving events.
    pub total_events: u64,
    /// Total overwritten events across all rings.
    pub total_dropped: u64,
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 * 100.0 / whole as f64
    }
}

impl Profile {
    /// Derive the profile. Pure function: identical recordings produce
    /// identical profiles (and identical [`Profile::to_json`] bytes).
    pub fn from_recording(rec: &FlightRecording) -> Profile {
        let mut workers = Vec::with_capacity(rec.workers.len());
        let mut levels: BTreeMap<u32, LevelProfile> = BTreeMap::new();
        let mut spans: BTreeMap<u32, (Option<u64>, Option<u64>)> = BTreeMap::new();
        let mut steal_fail_distance_us = LogHistogram::new();
        let mut stale_by_queue: BTreeMap<u64, u64> = BTreeMap::new();

        for (tid, dump) in rec.workers.iter().enumerate() {
            let mut w = WorkerProfile {
                tid,
                events: dump.events.len(),
                dropped: dump.dropped,
                ..WorkerProfile::default()
            };
            let evs = &dump.events;
            if let (Some(first), Some(last)) = (evs.first(), evs.last()) {
                w.total_us = last.ts_us.saturating_sub(first.ts_us);
            }
            for (i, e) in evs.iter().enumerate() {
                // Utilization: attribute the gap since the previous
                // event to whatever this event terminates.
                if i > 0 {
                    let gap = e.ts_us.saturating_sub(evs[i - 1].ts_us);
                    match e.kind {
                        kind::BARRIER_EXIT => w.barrier_us += gap,
                        kind::STEAL_SUCCESS | kind::STEAL_FAIL => w.steal_us += gap,
                        _ => w.work_us += gap,
                    }
                }
                match e.kind {
                    kind::SEGMENT_FETCH => w.segments += 1,
                    kind::STEAL_SUCCESS => w.steal_success += 1,
                    kind::STEAL_FAIL => {
                        w.steal_fail += 1;
                        // Distance to the next barrier entry on this
                        // worker, if the window still contains one.
                        if let Some(enter) = evs[i + 1..]
                            .iter()
                            .find(|n| n.kind == kind::BARRIER_ENTER)
                        {
                            steal_fail_distance_us
                                .record(enter.ts_us.saturating_sub(e.ts_us));
                        }
                    }
                    kind::STALE_ABORT => {
                        w.stale_aborts += 1;
                        *stale_by_queue.entry(e.a).or_insert(0) += 1;
                    }
                    _ => {}
                }
                // Per-level aggregates.
                let lv = levels.entry(e.level).or_insert_with(|| LevelProfile {
                    level: e.level,
                    ..LevelProfile::default()
                });
                match e.kind {
                    kind::SEGMENT_FETCH => lv.fetches += 1,
                    kind::FETCH_RETRY => lv.retries += 1,
                    kind::STALE_ABORT => lv.stale_aborts += 1,
                    kind::STEAL_SUCCESS => lv.steal_success += 1,
                    kind::STEAL_FAIL => lv.steal_fail += 1,
                    kind::FAULT => lv.faults += 1,
                    kind::DEGRADED => lv.degraded = 1,
                    kind::LEVEL_START => {
                        let s = spans.entry(e.level).or_insert((None, None));
                        s.0 = Some(s.0.map_or(e.ts_us, |t: u64| t.min(e.ts_us)));
                    }
                    kind::LEVEL_END => {
                        let s = spans.entry(e.level).or_insert((None, None));
                        s.1 = Some(s.1.map_or(e.ts_us, |t: u64| t.max(e.ts_us)));
                    }
                    _ => {}
                }
            }
            workers.push(w);
        }

        for (level, (start, end)) in &spans {
            if let (Some(s), Some(e)) = (start, end) {
                if let Some(lv) = levels.get_mut(level) {
                    lv.duration_us = e.saturating_sub(*s);
                }
            }
        }
        // Drop the synthetic level-0 bucket that only holds
        // worker-begin/end bookkeeping events (level 0 with no
        // activity at all).
        let levels: Vec<LevelProfile> = levels
            .into_values()
            .filter(|l| {
                l.duration_us != 0
                    || l.fetches + l.retries + l.stale_aborts + l.steal_success + l.steal_fail
                        + l.faults + l.degraded
                        != 0
            })
            .collect();

        Profile {
            total_events: workers.iter().map(|w| w.events as u64).sum(),
            total_dropped: workers.iter().map(|w| w.dropped).sum(),
            workers,
            levels,
            steal_fail_distance_us,
            stale_by_queue: stale_by_queue.into_iter().collect(),
        }
    }

    /// Deterministic JSON form (render with [`Json::render`]).
    pub fn to_json(&self) -> Json {
        let n = |v: u64| Json::Num(v as f64);
        let workers = self
            .workers
            .iter()
            .map(|w| {
                Json::Obj(vec![
                    ("tid".into(), n(w.tid as u64)),
                    ("events".into(), n(w.events as u64)),
                    ("dropped".into(), n(w.dropped)),
                    ("total_us".into(), n(w.total_us)),
                    ("work_us".into(), n(w.work_us)),
                    ("steal_us".into(), n(w.steal_us)),
                    ("barrier_us".into(), n(w.barrier_us)),
                    ("segments".into(), n(w.segments)),
                    ("steal_success".into(), n(w.steal_success)),
                    ("steal_fail".into(), n(w.steal_fail)),
                    ("stale_aborts".into(), n(w.stale_aborts)),
                ])
            })
            .collect();
        let levels = self
            .levels
            .iter()
            .map(|l| {
                Json::Obj(vec![
                    ("level".into(), n(l.level as u64)),
                    ("duration_us".into(), n(l.duration_us)),
                    ("fetches".into(), n(l.fetches)),
                    ("retries".into(), n(l.retries)),
                    ("stale_aborts".into(), n(l.stale_aborts)),
                    ("steal_success".into(), n(l.steal_success)),
                    ("steal_fail".into(), n(l.steal_fail)),
                    ("faults".into(), n(l.faults)),
                    ("degraded".into(), n(l.degraded)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str("obfs-profile-v1".into())),
            ("total_events".into(), n(self.total_events)),
            ("total_dropped".into(), n(self.total_dropped)),
            ("workers".into(), Json::Arr(workers)),
            ("levels".into(), Json::Arr(levels)),
            (
                "steal_fail_distance_us".into(),
                self.steal_fail_distance_us.to_json(),
            ),
            (
                "stale_by_queue".into(),
                Json::Arr(
                    self.stale_by_queue
                        .iter()
                        .map(|&(q, c)| Json::Arr(vec![n(q), n(c)]))
                        .collect(),
                ),
            ),
        ])
    }

    /// Human-readable fixed-width report.
    pub fn render_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        if self.total_events == 0 {
            out.push_str("empty recording (no events)\n");
            return out;
        }
        writeln!(
            out,
            "events: {}   dropped: {}{}",
            self.total_events,
            self.total_dropped,
            if self.total_dropped > 0 {
                "   (ring wrapped: profile covers a suffix window of the run)"
            } else {
                ""
            }
        )
        .unwrap();

        out.push_str("\nper-worker utilization\n");
        writeln!(
            out,
            "{:>4} {:>8} {:>8} {:>10} {:>7} {:>7} {:>7} {:>8} {:>7} {:>7} {:>7}",
            "tid", "events", "dropped", "span_us", "work%", "steal%", "barr%", "segs",
            "steal+", "steal-", "stale"
        )
        .unwrap();
        for w in &self.workers {
            writeln!(
                out,
                "{:>4} {:>8} {:>8} {:>10} {:>6.1}% {:>6.1}% {:>6.1}% {:>8} {:>7} {:>7} {:>7}",
                w.tid,
                w.events,
                w.dropped,
                w.total_us,
                pct(w.work_us, w.total_us),
                pct(w.steal_us, w.total_us),
                pct(w.barrier_us, w.total_us),
                w.segments,
                w.steal_success,
                w.steal_fail,
                w.stale_aborts
            )
            .unwrap();
        }

        if !self.levels.is_empty() {
            out.push_str("\nper-level activity\n");
            writeln!(
                out,
                "{:>5} {:>10} {:>8} {:>8} {:>9} {:>7} {:>7} {:>7} {:>6} {:>4}",
                "level", "span_us", "fetches", "retries", "retry/f", "stale", "steal+",
                "steal-", "fault", "deg"
            )
            .unwrap();
            for l in &self.levels {
                writeln!(
                    out,
                    "{:>5} {:>10} {:>8} {:>8} {:>9.3} {:>7} {:>7} {:>7} {:>6} {:>4}",
                    l.level,
                    l.duration_us,
                    l.fetches,
                    l.retries,
                    l.retry_rate(),
                    l.stale_aborts,
                    l.steal_success,
                    l.steal_fail,
                    l.faults,
                    if l.degraded != 0 { "yes" } else { "" }
                )
                .unwrap();
            }
        }

        if !self.steal_fail_distance_us.is_empty() {
            let h = &self.steal_fail_distance_us;
            out.push_str("\nsteal-fail distance to next barrier (us)\n");
            writeln!(
                out,
                "  n={}  p50={}  p90={}  p99={}  max={}",
                h.count(),
                h.percentile(0.50),
                h.percentile(0.90),
                h.percentile(0.99),
                h.max()
            )
            .unwrap();
        }

        if !self.stale_by_queue.is_empty() {
            out.push_str("\nstale aborts by queue (duplicate-exploration attribution)\n");
            for &(q, c) in &self.stale_by_queue {
                writeln!(out, "  queue {:>4}: {}", q, c).unwrap();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::{FlightEvent, RingDump};

    fn ev(ts_us: u64, kind: u16, level: u32, a: u64, b: u64) -> FlightEvent {
        FlightEvent { ts_us, kind, level, a, b }
    }

    /// One worker doing work, stealing, waiting; a second worker whose
    /// ring wrapped.
    fn rec() -> FlightRecording {
        FlightRecording {
            workers: vec![
                RingDump {
                    events: vec![
                        ev(0, kind::WORKER_BEGIN, 0, 0, 0),
                        ev(10, kind::LEVEL_START, 1, 0, 0),
                        ev(40, kind::SEGMENT_FETCH, 1, 0, 8), // 30us work
                        ev(60, kind::STEAL_FAIL, 1, 1, 2),    // 20us steal
                        ev(70, kind::STEAL_SUCCESS, 1, 1, 4), // 10us steal
                        ev(75, kind::STALE_ABORT, 1, 3, 9),   // 5us work
                        ev(80, kind::LEVEL_END, 1, 0, 0),
                        ev(85, kind::BARRIER_ENTER, 1, 0, 0),
                        ev(100, kind::BARRIER_EXIT, 1, 0, 0), // 15us barrier
                        ev(110, kind::WORKER_END, 0, 0, 0),
                    ],
                    dropped: 0,
                },
                RingDump {
                    events: vec![
                        ev(12, kind::LEVEL_START, 1, 0, 0),
                        ev(50, kind::FETCH_RETRY, 1, 0, 0),
                        ev(90, kind::LEVEL_END, 1, 0, 0),
                    ],
                    dropped: 5,
                },
            ],
        }
    }

    #[test]
    fn utilization_gap_classification() {
        let p = Profile::from_recording(&rec());
        let w = &p.workers[0];
        assert_eq!(w.total_us, 110);
        assert_eq!(w.steal_us, 30, "gaps ending in steal events");
        assert_eq!(w.barrier_us, 15, "gap ending in barrier-exit");
        assert_eq!(w.work_us, w.total_us - w.steal_us - w.barrier_us);
        assert_eq!(w.segments, 1);
        assert_eq!(w.steal_success, 1);
        assert_eq!(w.steal_fail, 1);
        assert_eq!(w.stale_aborts, 1);
        assert!(w.utilization_pct() > 0.0 && w.utilization_pct() < 100.0);
    }

    #[test]
    fn level_aggregates_span_workers() {
        let p = Profile::from_recording(&rec());
        assert_eq!(p.levels.len(), 1);
        let l = &p.levels[0];
        assert_eq!(l.level, 1);
        // min LEVEL_START (10) to max LEVEL_END (90).
        assert_eq!(l.duration_us, 80);
        assert_eq!(l.fetches, 1);
        assert_eq!(l.retries, 1);
        assert_eq!(l.stale_aborts, 1);
        assert_eq!(l.steal_success, 1);
        assert_eq!(l.steal_fail, 1);
        assert_eq!(l.degraded, 0);
        assert!((l.retry_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn steal_fail_distance_is_measured_to_next_barrier_enter() {
        let p = Profile::from_recording(&rec());
        // Fail at 60, next BARRIER_ENTER on the same worker at 85.
        assert_eq!(p.steal_fail_distance_us.count(), 1);
        assert_eq!(p.steal_fail_distance_us.max(), 25);
    }

    #[test]
    fn stale_attribution_and_dropped_totals() {
        let p = Profile::from_recording(&rec());
        assert_eq!(p.stale_by_queue, vec![(3, 1)]);
        assert_eq!(p.total_dropped, 5);
        assert_eq!(p.workers[1].dropped, 5);
        assert_eq!(p.total_events, 13);
    }

    #[test]
    fn profile_is_deterministic() {
        let a = Profile::from_recording(&rec());
        let b = Profile::from_recording(&rec());
        assert_eq!(a, b);
        assert_eq!(a.to_json().render(), b.to_json().render());
        assert_eq!(a.render_table(), b.render_table());
    }

    #[test]
    fn empty_recording_profiles_empty() {
        let p = Profile::from_recording(&FlightRecording::default());
        assert_eq!(p.total_events, 0);
        assert!(p.workers.is_empty());
        assert!(p.levels.is_empty());
        assert!(p.render_table().contains("empty recording"));
    }

    #[test]
    fn json_has_stable_shape() {
        let j = Profile::from_recording(&rec()).to_json();
        assert_eq!(j.get("schema").and_then(Json::as_str), Some("obfs-profile-v1"));
        assert_eq!(j.get("total_dropped").and_then(Json::as_u64), Some(5));
        let workers = j.get("workers").and_then(Json::as_arr).unwrap();
        assert_eq!(workers.len(), 2);
        assert_eq!(workers[1].get("dropped").and_then(Json::as_u64), Some(5));
        let levels = j.get("levels").and_then(Json::as_arr).unwrap();
        assert_eq!(levels[0].get("retries").and_then(Json::as_u64), Some(1));
        // Round-trips through the parser (shape, not just bytes).
        let rendered = j.render();
        assert_eq!(Json::parse(&rendered).unwrap().render(), rendered);
    }

    #[test]
    fn table_mentions_wrap_when_events_dropped() {
        let p = Profile::from_recording(&rec());
        let t = p.render_table();
        assert!(t.contains("suffix window"), "{t}");
        assert!(t.contains("per-worker utilization"));
        assert!(t.contains("per-level activity"));
    }
}
