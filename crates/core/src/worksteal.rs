//! Work-stealing BFS: BFSW / BFSWL (paper §IV-B.1, §IV-B.2) and the
//! two-phase scale-free variants BFSWS / BFSWSL (§IV-B.3, §IV-B.4).
//!
//! Thread `t` starts each level owning the whole of `Qin[t]` as one
//! segment `(q=t, f=0, r=rear)`. When a thread runs dry it picks random
//! victims (up to `c·p·log p` attempts) and steals the right half of the
//! victim's remaining segment.
//!
//! * **Locked** (BFSW): the victim's segment descriptor is protected by a
//!   per-thread lock; the owner also pops under its own lock, so segments
//!   are handed out exactly once.
//! * **Lock-free** (BFSWL): the thief snapshots `(q, f, r)` with plain
//!   loads, sanity-checks `f' < r' ≤ Qin[q'].rear`, then writes its own
//!   descriptor and the victim's `r` with plain stores. Races can produce
//!   stale or overlapping segments; the zero-on-read sentinel protocol
//!   turns those into bounded duplicate work, and the owner never checks
//!   its own `r` while walking — it stops only at a cleared slot — so a
//!   corrupted `r` can never hide live vertices.
//!
//! The scale-free variants split each level into two phases: phase 1
//! explores low-degree vertices with stealing and diverts hubs
//! (degree > threshold) into per-thread hub lists; after a barrier,
//! phase 2 explores the hubs' adjacency lists split evenly across all
//! threads (or, with [`crate::BfsOptions::phase2_steal`], via optimistic
//! edge-segment dispatch — the alternative the paper found usually
//! slower).

// lint:protocol racy — descriptor snapshots and segment publishes are
// plain stores; thieves and owners reconcile through the zero-on-read
// sentinel, so claims below must revalidate or carry a waiver.

use crate::driver::{take_slot, LevelEnv, Strategy};
use crate::frontier::{decode, EMPTY_SLOT};
use crate::state::RunState;
use crate::stats::ThreadStats;
use obfs_graph::VertexId;
use obfs_runtime::WorkerCtx;
use obfs_sync::flight;
use obfs_util::Xoshiro256StarStar;

/// Strategy covering all four work-stealing variants.
pub struct WorkStealing {
    /// Use per-victim locks (BFSW/BFSWS) instead of optimistic stealing.
    pub locked: bool,
    /// Enable the two-phase hub handling (BFSWS/BFSWSL).
    pub scale_free: bool,
}

impl Strategy for WorkStealing {
    fn level_start(&self, env: &LevelEnv<'_, '_>, tid: usize) {
        // Claim my own queue as a single segment. The barrier after
        // level_start publishes these before anyone can steal.
        let rear = env.st.qin(env.parity).queue(tid).rear();
        env.st.descs[tid].set(tid, 0, rear);
    }

    fn consume(
        &self,
        env: &LevelEnv<'_, '_>,
        ctx: &WorkerCtx<'_>,
        tid: usize,
        out_rear: &mut usize,
        rng: &mut Xoshiro256StarStar,
        ts: &mut ThreadStats,
    ) {
        // ---- phase 1: vertex exploration with stealing ----
        let mut seg = OwnedSegment { q: tid, f: 0, r: env.st.descs[tid].r.load() };
        loop {
            if self.locked {
                self.walk_locked(env, tid, &mut seg, out_rear, ts);
            } else {
                self.walk_sentinel(env, tid, &mut seg, out_rear, ts);
            }
            if env.st.watchdog_tripped() {
                break; // leader sweep finishes the level
            }
            match self.steal(env, tid, rng, ts) {
                Some(stolen) => seg = stolen,
                None => break, // budget exhausted: quit this level
            }
        }
        // ---- phase 2 (scale-free only): hub adjacency splitting ----
        if self.scale_free {
            let st = env.st;
            ctx.barrier().wait_then(|| {
                // SAFETY: barrier serial section — exclusive access.
                unsafe {
                    let flat = st.flat_vertices.get_mut();
                    let prefix = st.flat_prefix.get_mut();
                    flat.clear();
                    prefix.clear();
                    let mut acc = 0u64;
                    for t in 0..st.threads {
                        for &h in st.hubs.get(t).iter() {
                            flat.push(h);
                            prefix.push(acc);
                            acc += st.graph.degree(h) as u64;
                        }
                    }
                    prefix.push(acc);
                    st.edge_cursor.store(0);
                }
            });
            // SAFETY: own slot only.
            unsafe { st.hubs.get_mut(tid) }.clear();
            if st.opts.phase2_steal {
                self.hub_phase_stealing(env, tid, out_rear, ts);
            } else {
                self.hub_phase_static(env, tid, out_rear, ts);
            }
            // All threads finish hub work before the driver's level-end
            // barrier counts the next frontier (that barrier follows).
        }
    }
}

/// The thread-local view of the segment being walked.
pub(crate) struct OwnedSegment {
    pub(crate) q: usize,
    pub(crate) f: usize,
    /// Kept for symmetry with the shared descriptor, but deliberately
    /// never consulted while walking: the paper's owners stop only at a
    /// cleared slot, never at their own rear (which thieves may corrupt).
    #[allow(dead_code)]
    pub(crate) r: usize,
}

impl WorkStealing {
    // lint:region hot-path:walk-sentinel
    /// Lock-free owner walk: consume by sentinel, publishing `f` after
    /// every pop, never checking `r`.
    pub(crate) fn walk_sentinel(
        &self,
        env: &LevelEnv<'_, '_>,
        tid: usize,
        seg: &mut OwnedSegment,
        out_rear: &mut usize,
        ts: &mut ThreadStats,
    ) {
        let st = env.st;
        let qin = st.qin(env.parity);
        let queue = qin.queue(seg.q);
        let out = st.qout(env.parity).queue(tid);
        let desc = &st.descs[tid];
        loop {
            match take_slot(queue, seg.f) {
                Some(v) => {
                    seg.f += 1;
                    // racy-ok: single-writer — the owner alone advances its `f`
                    desc.f.store(seg.f);
                    self.process_pop(st, v, env.level, seg.q, tid, out, out_rear, ts);
                }
                None => {
                    if seg.f < queue.rear() {
                        ts.stale_slot_aborts += 1;
                        flight::record(
                            flight::kind::STALE_ABORT,
                            env.level,
                            seg.q as u64,
                            seg.f as u64,
                        );
                    }
                    return;
                }
            }
        }
    }
    // lint:endregion

    // lint:region baseline:walk-locked
    /// Locked owner walk: pop indices under the owner's lock so thieves
    /// and owner see a consistent `(f, r)`.
    fn walk_locked(
        &self,
        env: &LevelEnv<'_, '_>,
        tid: usize,
        seg: &mut OwnedSegment,
        out_rear: &mut usize,
        ts: &mut ThreadStats,
    ) {
        let st = env.st;
        let qin = st.qin(env.parity);
        let out = st.qout(env.parity).queue(tid);
        let desc = &st.descs[tid];
        loop {
            let (q, idx) = {
                let _g = st.desc_locks[tid].lock();
                ts.lock_acquisitions += 1;
                let f = desc.f.load();
                let r = desc.r.load();
                if f >= r {
                    return;
                }
                // racy-ok: under the owner's own descriptor lock
                desc.f.store(f + 1);
                (desc.q.load(), f)
            };
            seg.q = q;
            let v = decode(qin.queue(q).slot(idx));
            self.process_pop(st, v, env.level, q, tid, out, out_rear, ts);
        }
    }
    // lint:endregion

    /// Shared pop handling: dedup admit, duplicate accounting, hub
    /// diversion, exploration.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn process_pop(
        &self,
        st: &RunState<'_>,
        v: VertexId,
        level: u32,
        from_queue: usize,
        tid: usize,
        out: &crate::frontier::FrontierQueue,
        out_rear: &mut usize,
        ts: &mut ThreadStats,
    ) {
        if !st.pop_admit(v, from_queue, ts) {
            return;
        }
        st.note_pop(v, level, ts);
        if self.scale_free && st.graph.degree(v) > st.hub_threshold {
            // SAFETY: own slot only.
            unsafe { st.hubs.get_mut(tid) }.push(v);
            return;
        }
        st.explore_vertex(v, level, tid, out, out_rear, ts);
    }

    /// Try to steal until success or budget exhaustion.
    fn steal(
        &self,
        env: &LevelEnv<'_, '_>,
        tid: usize,
        rng: &mut Xoshiro256StarStar,
        ts: &mut ThreadStats,
    ) -> Option<OwnedSegment> {
        let st = env.st;
        let p = st.threads;
        if p <= 1 {
            return None;
        }
        let budget = st.opts.retry_budget(p);
        let mut wd_retries = 0u64;
        for _ in 0..budget {
            if st.watchdog_retry(&mut wd_retries) {
                return None; // degraded: stop searching for work
            }
            let attempt_timer = obfs_sync::metrics::timer();
            let victim = match &st.opts.topology {
                Some(t) => t.numa_victim(tid, 0.75, rng)?,
                None => uniform_victim(tid, p, rng),
            };
            ts.steal.attempts += 1;
            let stolen = if self.locked {
                self.try_steal_locked(env, tid, victim, ts)
            } else {
                self.try_steal_optimistic(env, tid, victim, ts)
            };
            obfs_sync::metrics::steal_attempt(attempt_timer);
            if let Some(seg) = stolen {
                ts.steal.success += 1;
                flight::record(
                    flight::kind::STEAL_SUCCESS,
                    env.level,
                    victim as u64,
                    (seg.r - seg.f) as u64,
                );
                return Some(seg);
            }
        }
        None
    }

    // lint:region baseline:steal-locked
    /// BFSW steal: lock the victim, cut its right half exactly.
    fn try_steal_locked(
        &self,
        env: &LevelEnv<'_, '_>,
        tid: usize,
        victim: usize,
        ts: &mut ThreadStats,
    ) -> Option<OwnedSegment> {
        let st = env.st;
        let vd = &st.descs[victim];
        let (q, mid, r) = {
            let Some(_g) = st.desc_locks[victim].try_lock() else {
                ts.steal.victim_locked += 1;
                flight::record(
                    flight::kind::STEAL_FAIL,
                    env.level,
                    victim as u64,
                    flight::kind::STEAL_LOCKED,
                );
                return None;
            };
            ts.lock_acquisitions += 1;
            let f = vd.f.load();
            let r = vd.r.load();
            if f >= r {
                ts.steal.victim_idle += 1;
                flight::record(
                    flight::kind::STEAL_FAIL,
                    env.level,
                    victim as u64,
                    flight::kind::STEAL_IDLE,
                );
                return None;
            }
            if r - f < st.opts.steal_min {
                ts.steal.too_small += 1;
                flight::record(
                    flight::kind::STEAL_FAIL,
                    env.level,
                    victim as u64,
                    flight::kind::STEAL_TOO_SMALL,
                );
                return None;
            }
            let mid = f + (r - f) / 2;
            // racy-ok: under the victim's descriptor lock
            vd.r.store(mid);
            (vd.q.load(), mid, r)
        };
        // Publish my new segment under my own lock (thieves may be
        // reading my descriptor). Never hold two locks at once.
        {
            let _g = st.desc_locks[tid].lock();
            ts.lock_acquisitions += 1;
            // racy-ok: under this thread's own descriptor lock
            st.descs[tid].set(q, mid, r);
        }
        Some(OwnedSegment { q, f: mid, r })
    }
    // lint:endregion

    // lint:region hot-path:steal-snapshot
    /// BFSWL steal: snapshot, sanity-check, publish with plain stores
    /// (paper §IV-B.2).
    pub(crate) fn try_steal_optimistic(
        &self,
        env: &LevelEnv<'_, '_>,
        tid: usize,
        victim: usize,
        ts: &mut ThreadStats,
    ) -> Option<OwnedSegment> {
        let st = env.st;
        let qin = st.qin(env.parity);
        let (q, f, r) = st.descs[victim].snapshot();
        if f >= r {
            ts.steal.victim_idle += 1;
            flight::record(
                flight::kind::STEAL_FAIL,
                env.level,
                victim as u64,
                flight::kind::STEAL_IDLE,
            );
            return None;
        }
        // Sanity check: f < r (above) and r within the victim queue's
        // immutable level rear. A mixed snapshot (victim moved queues
        // between our three loads) fails here and we retry elsewhere.
        if q >= st.threads || r > qin.queue(q).rear() {
            ts.steal.invalid += 1;
            flight::record(
                flight::kind::STEAL_FAIL,
                env.level,
                victim as u64,
                flight::kind::STEAL_INVALID,
            );
            return None;
        }
        if r - f < st.opts.steal_min {
            ts.steal.too_small += 1;
            flight::record(
                flight::kind::STEAL_FAIL,
                env.level,
                victim as u64,
                flight::kind::STEAL_TOO_SMALL,
            );
            return None;
        }
        let mid = f + (r - f) / 2;
        // Publish: my descriptor first, then shrink the victim. Plain
        // stores — overlapping thieves produce duplicate segments, which
        // the sentinel walk bounds.
        // racy-ok: optimistic publish after the snapshot sanity checks above
        st.descs[tid].set(q, mid, r);
        // racy-ok: optimistic rear shrink — overlap is bounded duplicate work
        st.descs[victim].r.store(mid);
        if qin.queue(q).slot(mid) == EMPTY_SLOT {
            // Already consumed: the snapshot was stale.
            ts.steal.stale += 1;
            flight::record(
                flight::kind::STEAL_FAIL,
                env.level,
                victim as u64,
                flight::kind::STEAL_STALE,
            );
            return None;
        }
        Some(OwnedSegment { q, f: mid, r })
    }
    // lint:endregion

    /// Phase 2, static split: thread `tid` explores the `tid`-th chunk of
    /// every hub's adjacency list (paper §IV-B.3 first variant).
    fn hub_phase_static(
        &self,
        env: &LevelEnv<'_, '_>,
        tid: usize,
        out_rear: &mut usize,
        ts: &mut ThreadStats,
    ) {
        let st = env.st;
        let p = st.threads;
        let out = st.qout(env.parity).queue(tid);
        // SAFETY: read-only between the build barrier and the level-end
        // barrier.
        let flat = unsafe { st.flat_vertices.get() };
        let next = env.level + 1;
        for &h in flat {
            let neigh = st.graph.neighbors(h);
            let len = neigh.len();
            let lo = len * tid / p;
            let hi = len * (tid + 1) / p;
            ts.edges_scanned += (hi - lo) as u64;
            if st.batch.is_some() {
                // Bit-parallel kernel: every chunk of h's adjacency sees
                // the same barrier-published frontier word.
                let fbits = st.frontier_bits(h, env.level);
                if fbits != 0 {
                    for &w in &neigh[lo..hi] {
                        st.try_discover_batch(w, h, fbits, next, out, out_rear, ts);
                    }
                }
            } else {
                for &w in &neigh[lo..hi] {
                    st.try_discover(w, h, next, tid, out, out_rear, ts);
                }
            }
        }
    }

    /// Phase 2, stealing split: optimistic dispatch over the concatenated
    /// hub edge array via the shared racy edge cursor (the paper's second
    /// §IV-B.3 variant, generalized to edge segments).
    fn hub_phase_stealing(
        &self,
        env: &LevelEnv<'_, '_>,
        tid: usize,
        out_rear: &mut usize,
        ts: &mut ThreadStats,
    ) {
        let st = env.st;
        let out = st.qout(env.parity).queue(tid);
        // SAFETY: read-only between barriers.
        let flat = unsafe { st.flat_vertices.get() };
        // SAFETY: read-only between barriers, as above.
        let prefix = unsafe { st.flat_prefix.get() };
        crate::ext::consume_edge_ranges(st, flat, prefix, env.level, tid, out, out_rear, ts);
    }
}

/// Uniform random victim != `tid` among `p` threads (`p >= 2`).
#[inline]
pub(crate) fn uniform_victim(tid: usize, p: usize, rng: &mut Xoshiro256StarStar) -> usize {
    let mut v = rng.below_usize(p - 1);
    if v >= tid {
        v += 1;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{Algorithm, BfsOptions};
    use crate::serial::serial_bfs;
    use crate::run_bfs;
    use obfs_graph::gen;

    /// Drive the optimistic steal sanity checks directly with adversarial
    /// descriptor states — the unit-level encoding of DESIGN.md §7.3.
    mod adversarial_steal {
        use super::*;
        use crate::state::RunState;
        use crate::stats::ThreadStats;

        fn env_with_frontier(n: usize) -> (obfs_graph::CsrGraph, BfsOptions) {
            let g = gen::path(n);
            let o = BfsOptions { threads: 4, steal_min: 2, ..Default::default() };
            (g, o)
        }

        fn fill_queue(st: &RunState<'_>, q: usize, count: usize) {
            let queue = st.qin(0).queue(q);
            let mut rear = 0;
            for v in 0..count as u32 {
                queue.push(&mut rear, v);
            }
        }

        fn strategy() -> WorkStealing {
            WorkStealing { locked: false, scale_free: false }
        }

        #[test]
        fn invalid_rear_beyond_queue_is_rejected() {
            let (g, o) = env_with_frontier(64);
            let st = RunState::new(&g, &o);
            fill_queue(&st, 1, 10);
            // Victim claims a segment whose rear exceeds the queue's
            // immutable level rear (a mixed snapshot).
            st.descs[1].set(1, 2, 50);
            let env = LevelEnv { st: &st, parity: 0, level: 0 };
            let mut ts = ThreadStats::default();
            ts.steal.attempts += 1;
            let got = strategy().try_steal_optimistic(&env, 0, 1, &mut ts);
            assert!(got.is_none());
            assert_eq!(ts.steal.invalid, 1);
        }

        #[test]
        fn idle_victim_is_classified_idle() {
            let (g, o) = env_with_frontier(64);
            let st = RunState::new(&g, &o);
            fill_queue(&st, 1, 10);
            st.descs[1].set(1, 10, 10); // exhausted
            let env = LevelEnv { st: &st, parity: 0, level: 0 };
            let mut ts = ThreadStats::default();
            assert!(strategy().try_steal_optimistic(&env, 0, 1, &mut ts).is_none());
            assert_eq!(ts.steal.victim_idle, 1);
            // f > r (descriptor dragged backwards) is also idle, not UB.
            st.descs[1].set(1, 9, 4);
            assert!(strategy().try_steal_optimistic(&env, 0, 1, &mut ts).is_none());
            assert_eq!(ts.steal.victim_idle, 2);
        }

        #[test]
        fn too_small_segment_is_rejected() {
            let (g, o) = env_with_frontier(64);
            let st = RunState::new(&g, &o);
            fill_queue(&st, 2, 10);
            st.descs[2].set(2, 8, 9); // one element < steal_min=2
            let env = LevelEnv { st: &st, parity: 0, level: 0 };
            let mut ts = ThreadStats::default();
            assert!(strategy().try_steal_optimistic(&env, 0, 2, &mut ts).is_none());
            assert_eq!(ts.steal.too_small, 1);
        }

        #[test]
        fn stale_segment_detected_by_cleared_slot() {
            let (g, o) = env_with_frontier(64);
            let st = RunState::new(&g, &o);
            fill_queue(&st, 1, 10);
            // Simulate another thief having consumed the right half.
            for i in 5..10 {
                st.qin(0).queue(1).clear_slot(i);
            }
            st.descs[1].set(1, 0, 10);
            let env = LevelEnv { st: &st, parity: 0, level: 0 };
            let mut ts = ThreadStats::default();
            let got = strategy().try_steal_optimistic(&env, 0, 1, &mut ts);
            assert!(got.is_none());
            assert_eq!(ts.steal.stale, 1);
            // The victim's rear was still shrunk (as in the real race).
            assert_eq!(st.descs[1].r.load(), 5);
        }

        #[test]
        fn valid_steal_takes_right_half_and_updates_both_descriptors() {
            let (g, o) = env_with_frontier(64);
            let st = RunState::new(&g, &o);
            fill_queue(&st, 3, 12);
            st.descs[3].set(3, 2, 12);
            let env = LevelEnv { st: &st, parity: 0, level: 0 };
            let mut ts = ThreadStats::default();
            let seg = strategy().try_steal_optimistic(&env, 0, 3, &mut ts).expect("valid steal");
            assert_eq!((seg.q, seg.f, seg.r), (3, 7, 12));
            assert_eq!(st.descs[3].snapshot(), (3, 2, 7), "victim keeps the left half");
            assert_eq!(st.descs[0].snapshot(), (3, 7, 12), "thief published its segment");
        }

        /// The chaos backend's encoding of the same adversary: a plan
        /// that skews *every* tagged index read fabricates the `r'` the
        /// thief snapshots (including `usize::MAX / 4`-scale probes).
        /// Every attempt must land in a sanity-failure bucket — no
        /// panic, no out-of-bounds slot read, no accepted steal.
        #[cfg(feature = "chaos")]
        #[test]
        fn chaos_skewed_snapshot_is_rejected_by_sanity_check() {
            let (g, o) = env_with_frontier(64);
            let st = RunState::new(&g, &o);
            fill_queue(&st, 1, 32);
            st.descs[1].set(1, 0, 32); // perfectly valid victim state
            let cfg = obfs_sync::ChaosConfig {
                skew_chance: 1.0,
                skew_max: 1 << 30,
                ..obfs_sync::ChaosConfig::skew_only(7)
            };
            obfs_sync::chaos::install(&cfg, 0);
            let env = LevelEnv { st: &st, parity: 0, level: 0 };
            let mut ts = ThreadStats::default();
            for _ in 0..64 {
                ts.steal.attempts += 1;
                let got = strategy().try_steal_optimistic(&env, 0, 1, &mut ts);
                assert!(got.is_none(), "a fabricated snapshot must never be stolen");
            }
            let injected = obfs_sync::chaos::uninstall();
            assert!(injected >= 64, "every snapshot should have been skewed");
            assert_eq!(ts.steal.success, 0);
            assert!(ts.steal.invalid > 0, "no skew ever hit `f' < r' <= rear`");
            assert!(ts.steal.is_consistent());
        }

        #[test]
        fn locked_steal_fails_cleanly_on_held_lock() {
            let (g, o) = env_with_frontier(64);
            let st = RunState::new(&g, &o);
            fill_queue(&st, 1, 10);
            st.descs[1].set(1, 0, 10);
            let env = LevelEnv { st: &st, parity: 0, level: 0 };
            let strat = WorkStealing { locked: true, scale_free: false };
            let _held = st.desc_locks[1].lock();
            let mut ts = ThreadStats::default();
            assert!(strat.try_steal_locked(&env, 0, 1, &mut ts).is_none());
            assert_eq!(ts.steal.victim_locked, 1);
            assert_eq!(st.descs[1].snapshot(), (1, 0, 10), "victim untouched");
        }
    }

    fn opts(threads: usize) -> BfsOptions {
        BfsOptions { threads, ..Default::default() }
    }

    fn check(algo: Algorithm, g: &obfs_graph::CsrGraph, src: u32, o: &BfsOptions) {
        let par = run_bfs(algo, g, src, o);
        let ser = serial_bfs(g, src);
        assert_eq!(par.levels, ser.levels, "{algo} vs serial (src={src})");
    }

    #[test]
    fn bfsw_matches_serial() {
        let o = opts(4);
        check(Algorithm::Bfsw, &gen::path(300), 0, &o);
        check(Algorithm::Bfsw, &gen::erdos_renyi(600, 4000, 1), 3, &o);
        check(Algorithm::Bfsw, &gen::binary_tree(255), 0, &o);
    }

    #[test]
    fn bfswl_matches_serial() {
        let o = opts(4);
        check(Algorithm::Bfswl, &gen::path(300), 5, &o);
        check(Algorithm::Bfswl, &gen::erdos_renyi(600, 4000, 2), 0, &o);
        check(Algorithm::Bfswl, &gen::complete(50), 1, &o);
    }

    #[test]
    fn scale_free_variants_match_serial_on_hub_graphs() {
        // Star: one extreme hub. Threshold forces the hub path.
        let o = BfsOptions { threads: 4, hub_threshold: Some(10), ..Default::default() };
        check(Algorithm::Bfsws, &gen::star(500), 0, &o);
        check(Algorithm::Bfswsl, &gen::star(500), 0, &o);
        // Start from a leaf so the hub is discovered, queued, then split.
        check(Algorithm::Bfsws, &gen::star(500), 7, &o);
        check(Algorithm::Bfswsl, &gen::star(500), 7, &o);
        // Power-law graph with many hubs.
        let g = gen::barabasi_albert(800, 3, 9);
        check(Algorithm::Bfsws, &g, 0, &o);
        check(Algorithm::Bfswsl, &g, 0, &o);
    }

    #[test]
    fn phase2_stealing_variant_matches_serial() {
        let o = BfsOptions {
            threads: 4,
            hub_threshold: Some(8),
            phase2_steal: true,
            ..Default::default()
        };
        check(Algorithm::Bfswsl, &gen::star(400), 2, &o);
        check(Algorithm::Bfswsl, &gen::barabasi_albert(600, 3, 4), 0, &o);
        check(Algorithm::Bfsws, &gen::barabasi_albert(600, 3, 4), 0, &o);
    }

    #[test]
    fn single_thread_work_stealing() {
        let o = opts(1);
        check(Algorithm::Bfsw, &gen::cycle(80), 0, &o);
        check(Algorithm::Bfswl, &gen::cycle(80), 0, &o);
        check(Algorithm::Bfswsl, &gen::star(100), 0, &o);
    }

    #[test]
    fn steal_counters_consistent() {
        let g = gen::erdos_renyi(2000, 16_000, 5);
        for algo in [Algorithm::Bfsw, Algorithm::Bfswl] {
            let r = run_bfs(algo, &g, 0, &opts(8));
            let s = r.stats.totals.steal;
            assert!(s.is_consistent(), "{algo}: {s:?}");
            if algo == Algorithm::Bfswl {
                assert_eq!(s.victim_locked, 0, "lock-free cannot fail on locks");
            }
        }
    }

    #[test]
    #[should_panic(expected = "describes 8 workers but threads = 4")]
    fn mismatched_topology_is_rejected_not_ub() {
        // A topology describing more workers than the run has would let
        // victim selection index out of the descriptor array; the options
        // validation must refuse it up front with a clear message.
        let o = BfsOptions {
            threads: 4,
            topology: Some(obfs_runtime::Topology::blocked(8, 2)),
            ..Default::default()
        };
        let g = gen::path(10);
        let _ = run_bfs(Algorithm::Bfswl, &g, 0, &o);
    }

    #[test]
    fn numa_topology_still_correct() {
        let o = BfsOptions {
            threads: 8,
            topology: Some(obfs_runtime::Topology::blocked(8, 2)),
            ..Default::default()
        };
        check(Algorithm::Bfswl, &gen::erdos_renyi(1000, 8000, 8), 0, &o);
        check(Algorithm::Bfsw, &gen::erdos_renyi(1000, 8000, 8), 0, &o);
    }

    #[test]
    fn wide_frontier_forces_steals() {
        // Binary tree rooted at 0: frontier doubles; queue 0 gets all of
        // it initially (single-source level 0), so steals must happen.
        let g = gen::binary_tree(4095);
        let r = run_bfs(Algorithm::Bfswl, &g, 0, &opts(8));
        let ser = serial_bfs(&g, 0);
        assert_eq!(r.levels, ser.levels);
        assert!(
            r.stats.totals.steal.attempts > 0,
            "8 threads on one seeded queue must attempt steals"
        );
    }
}
