//! Chaos-mode integration tests (`--features chaos`).
//!
//! Every test installs a *deterministic* fault plan ([`ChaosConfig`])
//! through [`BfsOptions::chaos`] and checks two things at once:
//!
//! 1. **Correctness under adversity** — whatever the plan perturbs
//!    (store-buffer staleness, delay windows, skewed index reads), every
//!    algorithm's level array must still equal the serial reference, and
//!    recorded parent trees must validate.
//! 2. **The recovery machinery actually fires** — the paper's sanity
//!    checks and sentinel protocol are only tested if the injected faults
//!    reach them, so each test asserts the corresponding counters
//!    (`fetch_retries`, `stale_slot_aborts`, `steal.invalid`,
//!    `injected_faults`, `degraded_levels`) are non-zero.
//!
//! Fault plans are seeded per worker, so failures reproduce; counters
//! that depend on thread interleavings are accumulated across several
//! seeds before asserting non-zero.
#![cfg(feature = "chaos")]

use obfs::core::validate;
use obfs::prelude::*;
use std::time::Duration;

/// All eight parallel algorithms (everything but `sbfs`).
const PARALLEL: [Algorithm; 8] = [
    Algorithm::Bfsc,
    Algorithm::Bfscl,
    Algorithm::Bfsdl,
    Algorithm::Bfsw,
    Algorithm::Bfswl,
    Algorithm::Bfsws,
    Algorithm::Bfswsl,
    Algorithm::EdgeCl,
];

/// The optimistic (lock-free) subset whose recovery paths chaos targets.
const LOCKFREE: [Algorithm; 5] = [
    Algorithm::Bfscl,
    Algorithm::Bfsdl,
    Algorithm::Bfswl,
    Algorithm::Bfswsl,
    Algorithm::EdgeCl,
];

/// Store-buffer staleness on every racy cell: all algorithms stay
/// correct, their parent trees validate, and the plan demonstrably
/// injected faults into every run.
#[test]
fn store_buffer_chaos_all_algorithms_stay_correct() {
    for seed in [1u64, 0xDEAD] {
        let g = gen::erdos_renyi(600, 4200, seed);
        let reference = serial_bfs(&g, 0);
        let opts = BfsOptions {
            threads: 4,
            record_parents: true,
            chaos: Some(ChaosConfig::store_buffer(0xB1F5 ^ seed)),
            ..Default::default()
        };
        for algo in PARALLEL {
            let r = run_bfs(algo, &g, 0, &opts);
            assert_eq!(r.levels, reference.levels, "{algo} seed={seed}");
            assert!(
                validate::check_self_consistent(&g, 0, &r).is_ok(),
                "{algo} seed={seed}: invalid BFS tree under chaos"
            );
            assert!(
                r.stats.totals.injected_faults > 0,
                "{algo} seed={seed}: plan installed but no faults injected"
            );
        }
    }
}

/// Scale-free graphs exercise the hub two-phase path under chaos.
#[test]
fn store_buffer_chaos_on_scale_free_graphs() {
    let g = gen::barabasi_albert(800, 4, 13);
    let reference = serial_bfs(&g, 0);
    let opts = BfsOptions {
        threads: 4,
        hub_threshold: Some(16),
        chaos: Some(ChaosConfig::store_buffer(77)),
        ..Default::default()
    };
    for algo in [Algorithm::Bfsws, Algorithm::Bfswsl] {
        let r = run_bfs(algo, &g, 0, &opts);
        assert_eq!(r.levels, reference.levels, "{algo}");
        assert!(r.stats.totals.injected_faults > 0, "{algo}");
    }
}

/// Aggressive chaos with single-slot segments drives the centralized /
/// decentralized dispatchers through their recovery paths: raced fetches
/// (`f' >= r'` sanity failures → `fetch_retries`) and replayed segments
/// aborted at a cleared slot (`stale_slot_aborts`).
#[test]
fn chaos_drives_centralized_sanity_recovery() {
    let mut fetch_retries = 0u64;
    let mut stale_aborts = 0u64;
    for seed in 0..6u64 {
        let g = gen::erdos_renyi(400, 2800, seed);
        let reference = serial_bfs(&g, 0);
        let opts = BfsOptions {
            threads: 4,
            segment: SegmentPolicy::Fixed(1),
            chaos: Some(ChaosConfig::aggressive(seed)),
            ..Default::default()
        };
        for algo in [Algorithm::Bfscl, Algorithm::Bfsdl] {
            let r = run_bfs(algo, &g, 0, &opts);
            assert_eq!(r.levels, reference.levels, "{algo} seed={seed}");
            assert!(r.stats.totals.injected_faults > 0, "{algo} seed={seed}");
            fetch_retries += r.stats.totals.fetch_retries;
            stale_aborts += r.stats.totals.stale_slot_aborts;
        }
    }
    assert!(fetch_retries > 0, "chaos never produced an invalid fetch");
    assert!(stale_aborts > 0, "chaos never produced a stale-slot abort");
}

/// Index skew fabricates adversarial `rear` values at the one point the
/// work-steal sanity check guards ([`SegmentDesc::snapshot`]): thieves
/// must reject them (`steal.invalid`), never index out of bounds, and
/// the traversal must stay correct.
#[test]
fn skew_drives_invalid_segment_rejections_in_stealing() {
    let mut invalid = 0u64;
    let mut attempts = 0u64;
    for seed in 0..6u64 {
        let g = gen::erdos_renyi(500, 3000, seed);
        let reference = serial_bfs(&g, 0);
        let opts = BfsOptions {
            threads: 4,
            chaos: Some(ChaosConfig::skew_only(0x5EED + seed)),
            ..Default::default()
        };
        for algo in [Algorithm::Bfswl, Algorithm::Bfswsl] {
            let r = run_bfs(algo, &g, 0, &opts);
            assert_eq!(r.levels, reference.levels, "{algo} seed={seed}");
            assert!(
                r.stats.totals.steal.is_consistent(),
                "{algo} seed={seed}: steal counters inconsistent"
            );
            invalid += r.stats.totals.steal.invalid;
            attempts += r.stats.totals.steal.attempts;
        }
    }
    assert!(attempts > 0, "no steals were ever attempted");
    assert!(invalid > 0, "skewed rear values never hit the sanity check");
}

/// Worst-case skew: *every* snapshot is fabricated, including
/// `usize::MAX / 4`-scale out-of-range probes. The sanity check must
/// absorb all of it — no panic, no out-of-bounds read, correct levels —
/// with owners alone draining the frontier.
#[test]
fn total_skew_never_reads_out_of_bounds() {
    let cfg = ChaosConfig {
        skew_chance: 1.0,
        skew_max: 1 << 30,
        ..ChaosConfig::skew_only(99)
    };
    let g = gen::barabasi_albert(600, 3, 21);
    let reference = serial_bfs(&g, 0);
    let opts = BfsOptions { threads: 4, chaos: Some(cfg), ..Default::default() };
    for algo in [Algorithm::Bfswl, Algorithm::Bfswsl] {
        let r = run_bfs(algo, &g, 0, &opts);
        assert_eq!(r.levels, reference.levels, "{algo}");
        let s = r.stats.totals.steal;
        // Every fabricated segment must land in a failure bucket.
        assert!(s.is_consistent(), "{algo}");
        assert_eq!(s.success, 0, "{algo}: a fully-fabricated snapshot was stolen");
    }
}

/// A zero wall-clock budget trips the watchdog on every level: the
/// leader's serial sweep must finish each level, count it as degraded,
/// and still produce the exact serial levels — for all algorithms.
#[test]
fn watchdog_zero_deadline_degrades_every_level_correctly() {
    let g = gen::erdos_renyi(500, 3500, 7);
    let reference = serial_bfs(&g, 0);
    let opts = BfsOptions {
        threads: 4,
        watchdog: Some(WatchdogPolicy::deadline(Duration::ZERO)),
        ..Default::default()
    };
    for algo in PARALLEL {
        let r = run_bfs(algo, &g, 0, &opts);
        assert_eq!(r.levels, reference.levels, "{algo}");
        assert_eq!(
            r.stats.degraded_levels, r.stats.levels,
            "{algo}: zero deadline must degrade every level"
        );
    }
}

/// A generous deadline never trips: no degradation, chaos or not.
#[test]
fn watchdog_generous_deadline_never_trips() {
    let g = gen::erdos_renyi(400, 2400, 3);
    let reference = serial_bfs(&g, 0);
    let opts = BfsOptions {
        threads: 4,
        chaos: Some(ChaosConfig::store_buffer(5)),
        watchdog: Some(WatchdogPolicy::deadline(Duration::from_secs(3600))),
        ..Default::default()
    };
    for algo in LOCKFREE {
        let r = run_bfs(algo, &g, 0, &opts);
        assert_eq!(r.levels, reference.levels, "{algo}");
        assert_eq!(r.stats.degraded_levels, 0, "{algo}: generous deadline tripped");
    }
}

/// The retry-budget arm of the watchdog: with chaos forcing raced
/// fetches and a budget of one, some level must degrade — and degraded
/// levels must still be correct.
#[test]
fn watchdog_retry_budget_trips_under_chaos() {
    let mut degraded = 0u64;
    for seed in 0..8u64 {
        let g = gen::erdos_renyi(300, 2100, seed);
        let reference = serial_bfs(&g, 0);
        let opts = BfsOptions {
            threads: 4,
            segment: SegmentPolicy::Fixed(1),
            chaos: Some(ChaosConfig::aggressive(seed)),
            watchdog: Some(WatchdogPolicy {
                max_fetch_retries: Some(1),
                ..Default::default()
            }),
            ..Default::default()
        };
        let r = run_bfs(Algorithm::Bfscl, &g, 0, &opts);
        assert_eq!(r.levels, reference.levels, "seed {seed}");
        degraded += u64::from(r.stats.degraded_levels);
    }
    assert!(degraded > 0, "retry budget of 1 never tripped under aggressive chaos");
}

/// With one worker the interleaving is fixed, so the per-thread fault
/// plan makes the whole run — including the injected-fault count —
/// bit-for-bit reproducible.
#[test]
fn single_thread_fault_injection_is_deterministic() {
    let g = gen::barabasi_albert(400, 3, 11);
    let opts = BfsOptions {
        threads: 1,
        chaos: Some(ChaosConfig::store_buffer(42)),
        ..Default::default()
    };
    let a = run_bfs(Algorithm::Bfscl, &g, 0, &opts);
    let b = run_bfs(Algorithm::Bfscl, &g, 0, &opts);
    assert!(a.stats.totals.injected_faults > 0, "no faults injected");
    assert_eq!(
        a.stats.totals.injected_faults, b.stats.totals.injected_faults,
        "same seed, same thread count, different fault counts"
    );
    assert_eq!(a.levels, b.levels);
}

/// Hybrid direction switching under store-buffer chaos: the bitmap fill
/// reads `level[]` *after* the level barrier flushed every deferred
/// store, so seeded fault plans must leave hybrid BFSCL/BFSWSL exact —
/// across heuristic and forced direction choices — while demonstrably
/// injecting faults.
#[test]
fn hybrid_store_buffer_chaos_stays_exact_across_switches() {
    let forces = [
        ("heuristic", HybridPolicy::default()),
        ("forced-bu", HybridPolicy::forced(ForcedDirection::AlwaysBottomUp)),
    ];
    for seed in [2u64, 0xBEEF] {
        // Dense enough that the heuristic really switches mid-run.
        let g = gen::rmat(10, 16, gen::RmatParams::default(), seed);
        let src = (0..g.num_vertices() as u32).find(|&v| g.degree(v) > 0).unwrap();
        let reference = serial_bfs(&g, src);
        for (mode, pol) in &forces {
            let opts = BfsOptions {
                threads: 4,
                record_parents: true,
                hybrid: Some(*pol),
                chaos: Some(ChaosConfig::store_buffer(0xD1CE ^ seed)),
                ..Default::default()
            };
            for algo in [Algorithm::Bfscl, Algorithm::Bfswsl] {
                let r = run_bfs(algo, &g, src, &opts);
                assert_eq!(r.levels, reference.levels, "{algo} {mode} seed={seed}");
                assert!(
                    validate::check_self_consistent(&g, src, &r).is_ok(),
                    "{algo} {mode} seed={seed}: invalid tree under chaos"
                );
                assert!(r.stats.totals.injected_faults > 0, "{algo} {mode} seed={seed}");
                assert_eq!(
                    r.stats.directions.len() as u32,
                    r.stats.levels,
                    "{algo} {mode} seed={seed}"
                );
                if *mode == "heuristic" {
                    assert!(
                        r.stats.directions.contains(&Direction::BottomUp),
                        "{algo} seed={seed}: dense RMAT should go bottom-up"
                    );
                }
            }
        }
    }
}

/// The watchdog's serial sweep re-explores the (never-consumed) input
/// queues top-down, which is idempotent with whatever a bottom-up level
/// already discovered — so a zero deadline must degrade every level of a
/// hybrid run and still produce exact results, with the recovery
/// counters firing as usual.
#[test]
fn hybrid_watchdog_degrades_bottom_up_levels_correctly() {
    let g = gen::rmat(9, 16, gen::RmatParams::default(), 23);
    let src = (0..g.num_vertices() as u32).find(|&v| g.degree(v) > 0).unwrap();
    let reference = serial_bfs(&g, src);
    for force in [None, Some(ForcedDirection::AlwaysBottomUp)] {
        let pol = match force {
            None => HybridPolicy::default(),
            Some(f) => HybridPolicy::forced(f),
        };
        let opts = BfsOptions {
            threads: 4,
            hybrid: Some(pol),
            watchdog: Some(WatchdogPolicy::deadline(Duration::ZERO)),
            ..Default::default()
        };
        for algo in [Algorithm::Bfscl, Algorithm::Bfswsl] {
            let r = run_bfs(algo, &g, src, &opts);
            assert_eq!(r.levels, reference.levels, "{algo} force={force:?}");
            assert_eq!(
                r.stats.degraded_levels, r.stats.levels,
                "{algo} force={force:?}: zero deadline must degrade every level"
            );
        }
    }
}

/// Aggressive chaos + hybrid + retry-budget watchdog: recovery counters
/// (fetch retries, degraded levels, injected faults) still fire with the
/// direction machinery in the loop, and results stay exact.
#[test]
fn hybrid_chaos_recovery_counters_still_fire() {
    let mut degraded = 0u64;
    let mut injected = 0u64;
    for seed in 0..6u64 {
        let g = gen::erdos_renyi(400, 6000, seed);
        let reference = serial_bfs(&g, 0);
        let opts = BfsOptions {
            threads: 4,
            segment: SegmentPolicy::Fixed(1),
            hybrid: Some(HybridPolicy::default()),
            chaos: Some(ChaosConfig::aggressive(seed)),
            watchdog: Some(WatchdogPolicy {
                max_fetch_retries: Some(1),
                ..Default::default()
            }),
            ..Default::default()
        };
        for algo in [Algorithm::Bfscl, Algorithm::Bfswsl] {
            let r = run_bfs(algo, &g, 0, &opts);
            assert_eq!(r.levels, reference.levels, "{algo} seed={seed}");
            degraded += u64::from(r.stats.degraded_levels);
            injected += r.stats.totals.injected_faults;
        }
    }
    assert!(injected > 0, "aggressive plans never injected into hybrid runs");
    assert!(degraded > 0, "retry budget of 1 never tripped under hybrid chaos");
}

/// Prefix-sum compaction under store-buffer chaos: the compaction bitmap
/// is rebuilt from `level[]` *before* the extra barrier and consumed by a
/// static partition after it, so seeded staleness on the racy cells must
/// leave forced-on compacted runs exact — while the counters prove both
/// the compactor and the fault plan actually ran.
#[test]
fn compaction_store_buffer_chaos_stays_exact() {
    for seed in [4u64, 0xFACE] {
        let g = gen::erdos_renyi(600, 4800, seed);
        let reference = serial_bfs(&g, 0);
        let opts = BfsOptions {
            threads: 4,
            record_parents: true,
            compaction: Some(CompactionPolicy::forced_on()),
            chaos: Some(ChaosConfig::store_buffer(0xC0A7 ^ seed)),
            ..Default::default()
        };
        for algo in PARALLEL {
            let r = run_bfs(algo, &g, 0, &opts);
            assert_eq!(r.levels, reference.levels, "{algo} seed={seed}");
            assert!(
                validate::check_self_consistent(&g, 0, &r).is_ok(),
                "{algo} seed={seed}: invalid tree under compacted chaos"
            );
            assert!(r.stats.compacted_levels > 0, "{algo} seed={seed}: never compacted");
            assert!(r.stats.totals.injected_faults > 0, "{algo} seed={seed}");
        }
    }
}

/// The watchdog's serial sweep re-explores the (never-consumed) input
/// queues — compaction leaves those queues intact by design, so a zero
/// deadline must degrade every level of a compaction-enabled run and
/// still produce exact levels.
#[test]
fn compaction_watchdog_degradation_stays_exact() {
    let g = gen::erdos_renyi(500, 3500, 31);
    let reference = serial_bfs(&g, 0);
    let opts = BfsOptions {
        threads: 4,
        compaction: Some(CompactionPolicy::forced_on()),
        watchdog: Some(WatchdogPolicy::deadline(Duration::ZERO)),
        ..Default::default()
    };
    for algo in [Algorithm::Bfscl, Algorithm::Bfswsl] {
        let r = run_bfs(algo, &g, 0, &opts);
        assert_eq!(r.levels, reference.levels, "{algo}");
        assert_eq!(
            r.stats.degraded_levels, r.stats.levels,
            "{algo}: zero deadline must degrade every compacted level"
        );
    }
}

/// Without a plan installed the chaos-enabled build must behave exactly
/// like the plain build: zero injected faults, zero degradation.
#[test]
fn no_plan_means_no_faults() {
    let g = gen::erdos_renyi(300, 1800, 9);
    let reference = serial_bfs(&g, 0);
    let opts = BfsOptions { threads: 4, ..Default::default() };
    for algo in LOCKFREE {
        let r = run_bfs(algo, &g, 0, &opts);
        assert_eq!(r.levels, reference.levels, "{algo}");
        assert_eq!(r.stats.totals.injected_faults, 0, "{algo}");
        assert_eq!(r.stats.degraded_levels, 0, "{algo}");
    }
}

/// Store-buffer staleness on the batch kernel's racy cells — membership
/// words (`u64`), per-query level slots, and the push-dedup word all go
/// through the chaos hooks. Every query's levels must stay exactly
/// serial, and the plan must demonstrably inject.
#[test]
fn batch_store_buffer_chaos_stays_exact() {
    for seed in [3u64, 0xBEEF] {
        let g = gen::erdos_renyi(500, 3500, seed);
        let sources: Vec<u32> = (0..17).map(|q| (q * 29 + 1) % 500).collect();
        let opts = BfsOptions {
            threads: 4,
            record_parents: true,
            chaos: Some(ChaosConfig::store_buffer(0xBA7C ^ seed)),
            ..Default::default()
        };
        for algo in PARALLEL {
            let b = run_batch(algo, &g, &sources, &opts);
            for (q, qr) in b.queries.iter().enumerate() {
                let reference = serial_bfs(&g, sources[q]);
                assert_eq!(
                    qr.levels, reference.levels,
                    "{algo} seed={seed} query {q}: batch diverged under chaos"
                );
                let r = qr.as_bfs_result(&b.stats);
                assert!(
                    validate::check_self_consistent(&g, sources[q], &r).is_ok(),
                    "{algo} seed={seed} query {q}: invalid tree under chaos"
                );
            }
            assert!(
                b.stats.totals.injected_faults > 0,
                "{algo} seed={seed}: plan installed but no faults injected"
            );
        }
    }
}

/// Batch runs through the watchdog's serial sweep: a zero deadline
/// degrades every level, the sweep re-derives frontier words from the
/// barrier-published level rows, and each query stays exact.
#[test]
fn batch_watchdog_degradation_stays_exact() {
    let g = gen::erdos_renyi(400, 2800, 21);
    let sources: Vec<u32> = (0..33).map(|q| (q * 11 + 2) % 400).collect();
    let opts = BfsOptions {
        threads: 4,
        watchdog: Some(WatchdogPolicy::deadline(Duration::ZERO)),
        ..Default::default()
    };
    for algo in PARALLEL {
        let b = run_batch(algo, &g, &sources, &opts);
        assert_eq!(
            b.stats.degraded_levels, b.stats.levels,
            "{algo}: zero deadline must degrade every batched level"
        );
        for (q, qr) in b.queries.iter().enumerate() {
            let reference = serial_bfs(&g, sources[q]);
            assert_eq!(qr.levels, reference.levels, "{algo} query {q} after sweep");
        }
    }
}

/// Aggressive chaos + single-slot segments + retry budget of one on a
/// full 64-wide batch: recovery counters still fire and nothing bleeds
/// between queries.
#[test]
fn batch_chaos_recovery_counters_still_fire() {
    let mut injected = 0u64;
    let mut recovered = 0u64;
    for seed in 0..4u64 {
        let g = gen::erdos_renyi(300, 2100, seed + 100);
        let sources: Vec<u32> = (0..64).map(|q| (q * 7 + 1) % 300).collect();
        let opts = BfsOptions {
            threads: 4,
            segment: SegmentPolicy::Fixed(1),
            chaos: Some(ChaosConfig::aggressive(seed)),
            watchdog: Some(WatchdogPolicy {
                max_fetch_retries: Some(1),
                ..Default::default()
            }),
            ..Default::default()
        };
        let b = run_batch(Algorithm::Bfscl, &g, &sources, &opts);
        for (q, qr) in b.queries.iter().enumerate() {
            let reference = serial_bfs(&g, sources[q]);
            assert_eq!(qr.levels, reference.levels, "seed {seed} query {q}");
        }
        injected += b.stats.totals.injected_faults;
        recovered += b.stats.totals.fetch_retries
            + b.stats.totals.stale_slot_aborts
            + u64::from(b.stats.degraded_levels);
    }
    assert!(injected > 0, "aggressive plans never injected into batch runs");
    assert!(recovered > 0, "no recovery machinery fired across batch chaos seeds");
}
