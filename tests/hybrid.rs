//! Direction-optimizing hybrid tests: α/β switch points on crafted
//! frontier shapes, queue↔bitmap round-trips, and agreement between the
//! recorded per-level directions and an offline replay of the heuristic.

use obfs::prelude::*;
use obfs_core::serial::serial_bfs;
use obfs_core::state::RunState;
use obfs_core::validate::check_self_consistent;

fn hybrid_opts(threads: usize) -> BfsOptions {
    BfsOptions {
        threads,
        hybrid: Some(HybridPolicy::default()),
        collect_level_stats: true,
        record_parents: true,
        ..BfsOptions::default()
    }
}

/// Offline replay of the driver's heuristic from the recorded per-level
/// series. Exact, not approximate: the leader decided from the very
/// `frontier_edges` deltas and `discovered` counts that land in
/// [`obfs_core::LevelStats`].
fn replay_directions(
    g: &CsrGraph,
    src: u32,
    pol: &HybridPolicy,
    stats: &obfs_core::RunStats,
) -> Vec<Direction> {
    let n = g.num_vertices() as u64;
    let mut mu = g.num_edges();
    let mut dirs = vec![pol.decide(Direction::TopDown, 1, g.degree(src) as u64, mu, n)];
    for e in &stats.level_stats {
        let mf = e.counters.frontier_edges;
        mu -= mf.min(mu);
        if e.discovered > 0 {
            dirs.push(pol.decide(e.direction, e.discovered as u64, mf, mu, n));
        }
    }
    dirs
}

/// Run hybrid BFS and check the exact level/parent agreement plus the
/// direction bookkeeping invariants every run must satisfy.
fn check_hybrid(g: &CsrGraph, src: u32, opts: &BfsOptions) -> obfs::prelude::BfsResult {
    let reference = serial_bfs(g, src);
    let r = run_bfs(Algorithm::Bfscl, g, src, opts);
    assert_eq!(r.levels, reference.levels, "hybrid BFSCL levels diverge from serial");
    check_self_consistent(g, src, &r).expect("hybrid BFS tree must validate");
    assert_eq!(
        r.stats.directions.len() as u32,
        r.stats.levels,
        "one direction per executed level"
    );
    let switches: u32 = r
        .stats
        .directions
        .windows(2)
        .map(|w| u32::from(w[0] != w[1]))
        .sum();
    assert_eq!(switches, r.stats.direction_switches, "switch count mismatch");
    for (e, &d) in r.stats.level_stats.iter().zip(&r.stats.directions) {
        assert_eq!(e.direction, d, "LevelStats.direction disagrees with RunStats.directions");
    }
    r
}

#[test]
fn star_from_leaf_switches_bottom_up_at_the_hub_level() {
    // Level 0 is one leaf (mf = 1, so top-down); exploring it discovers
    // the hub, whose degree dominates the remaining edge volume — α must
    // fire and level 1 runs bottom-up.
    let g = gen::star(400);
    let src = 1; // a leaf; vertex 0 is the hub
    let r = check_hybrid(&g, src, &hybrid_opts(1));
    assert_eq!(r.stats.directions[0], Direction::TopDown, "leaf frontier stays top-down");
    assert_eq!(r.stats.directions[1], Direction::BottomUp, "hub frontier must flip");
    assert!(r.stats.direction_switches >= 1);
    let pol = HybridPolicy::default();
    assert_eq!(replay_directions(&g, src, &pol, &r.stats), r.stats.directions);
}

#[test]
fn star_from_hub_starts_bottom_up() {
    // The source *is* the hub: mf = degree(hub) = n-1 > m/α already at
    // level 0, so the very first level runs bottom-up (and discovers
    // every leaf through its single in-edge).
    let g = gen::star(400);
    let r = check_hybrid(&g, 0, &hybrid_opts(1));
    assert_eq!(r.stats.directions[0], Direction::BottomUp);
    assert_eq!(r.reached(), 400);
}

#[test]
fn path_stays_top_down_until_exhaustion() {
    // One-vertex frontiers: mf = O(1) while mu is large, so the early
    // levels must all be top-down (β only matters once mu/α collapses in
    // the tail, where Beamer's rule legitimately flips).
    let g = gen::path(500);
    let r = check_hybrid(&g, 0, &hybrid_opts(1));
    let early = &r.stats.directions[..r.stats.directions.len() * 9 / 10];
    assert!(
        early.iter().all(|&d| d == Direction::TopDown),
        "early path levels must be top-down: {:?}",
        &r.stats.directions
    );
    let pol = HybridPolicy::default();
    assert_eq!(replay_directions(&g, 0, &pol, &r.stats), r.stats.directions);
}

#[test]
fn dense_clique_runs_bottom_up() {
    // Complete graph: after level 0 the next frontier owns every
    // remaining edge, so α fires immediately.
    let g = gen::complete(300);
    let r = check_hybrid(&g, 0, &hybrid_opts(1));
    assert!(
        r.stats.directions.contains(&Direction::BottomUp),
        "expected a bottom-up level on K300, got {:?}",
        r.stats.directions
    );
    let pol = HybridPolicy::default();
    assert_eq!(replay_directions(&g, 0, &pol, &r.stats), r.stats.directions);
}

#[test]
fn recorded_directions_match_offline_replay_multithreaded() {
    // Multi-thread runs are scheduling-dependent, but the recorded series
    // is exactly what the leader decided from — the replay must agree
    // bit-for-bit on every run.
    for (g, src) in [
        (gen::erdos_renyi(2000, 40_000, 7), 0u32),
        (gen::barabasi_albert(1500, 4, 13), 3),
        (gen::rmat(11, 8, gen::RmatParams::default(), 5), 0),
    ] {
        let src = (src..g.num_vertices() as u32).find(|&v| g.degree(v) > 0).unwrap();
        for threads in [2usize, 4, 8] {
            let r = check_hybrid(&g, src, &hybrid_opts(threads));
            let pol = HybridPolicy::default();
            assert_eq!(
                replay_directions(&g, src, &pol, &r.stats),
                r.stats.directions,
                "replay diverges at {threads} threads"
            );
        }
    }
}

#[test]
fn custom_alpha_beta_change_the_switch_points() {
    let g = gen::erdos_renyi(1200, 30_000, 3);
    let first_bu = |r: &obfs::prelude::BfsResult| {
        r.stats.directions.iter().position(|&d| d == Direction::BottomUp)
    };
    // Large α shrinks the mu/α threshold: flips at the first chance
    // (any frontier with outgoing edges fires the rule).
    let eager = BfsOptions {
        hybrid: Some(HybridPolicy::with_constants(1_000_000, u64::MAX)),
        ..hybrid_opts(2)
    };
    let re = check_hybrid(&g, 0, &eager);
    let eager_at = first_bu(&re).expect("α=10^6 must go bottom-up");
    // β = u64::MAX keeps nf >= n/β trivially true: once bottom-up,
    // never switch back.
    assert!(
        re.stats.directions[eager_at..].iter().all(|&d| d == Direction::BottomUp),
        "huge β must pin bottom-up: {:?}",
        re.stats.directions
    );
    // α = 1 demands mf > mu — the most conservative setting can only
    // flip later (or never).
    let lazy = BfsOptions {
        hybrid: Some(HybridPolicy::with_constants(1, 24)),
        ..hybrid_opts(2)
    };
    let rl = check_hybrid(&g, 0, &lazy);
    assert!(
        first_bu(&rl).is_none_or(|at| at >= eager_at),
        "α=1 flipped earlier ({:?}) than α=10^6 ({eager_at})",
        first_bu(&rl)
    );
    // β = 1 demands nf >= n to stay: a bottom-up level is always
    // followed by top-down.
    let bounce = BfsOptions {
        hybrid: Some(HybridPolicy::with_constants(1_000_000, 1)),
        ..hybrid_opts(2)
    };
    let rb = check_hybrid(&g, 0, &bounce);
    for w in rb.stats.directions.windows(2) {
        assert!(
            !(w[0] == Direction::BottomUp && w[1] == Direction::BottomUp),
            "β=1 must bounce straight back: {:?}",
            rb.stats.directions
        );
    }
}

#[test]
fn bitmap_round_trips_the_queue_frontier() {
    // Fill level[] with a known frontier, rebuild the bitmap chunk by
    // chunk (as each worker would), and check the exact membership both
    // ways — the queue→bitmap conversion the driver relies on.
    let g = gen::erdos_renyi(777, 4000, 21);
    let opts = hybrid_opts(4);
    let st = RunState::new(&g, &opts);
    for t in 0..4 {
        st.init_chunk(t);
    }
    let frontier: Vec<usize> = (0..777).filter(|v| v % 7 == 3 || v % 31 == 0).collect();
    for &v in &frontier {
        st.levels.set(v, 5);
    }
    st.levels.set(13, 4); // wrong level: must stay out of the bitmap
    for t in 0..4 {
        st.fill_bitmap_chunk(5, t);
    }
    let bm = &st.hyb.as_ref().unwrap().bitmap;
    assert_eq!(bm.snapshot_ones(), frontier);
    for v in 0..777 {
        assert_eq!(bm.test(v), st.levels.get(v) == 5, "bit {v}");
    }
    // Refill at another level: stale bits must be rebuilt, not OR-ed.
    for t in 0..4 {
        st.fill_bitmap_chunk(4, t);
    }
    assert_eq!(bm.snapshot_ones(), vec![13]);
}

#[test]
fn bottom_up_level_produces_real_queue_state() {
    // After a bottom-up level the output queues must hold exactly the
    // discovered vertices (no duplicates — the static partition has one
    // writer per vertex), so a following top-down level starts from real
    // queue state.
    let g = gen::star(64);
    let opts = hybrid_opts(1);
    let st = RunState::new(&g, &opts);
    st.init_chunk(0);
    st.levels.set(0, 0); // hub is the frontier
    st.fill_bitmap_chunk(0, 0);
    let out = st.qout(0).queue(0);
    let mut rear = 0usize;
    let mut ts = obfs_core::ThreadStats::default();
    st.bottom_up_level(0, 0, out, &mut rear, &mut ts);
    assert_eq!(rear, 63, "every leaf discovered exactly once");
    assert_eq!(ts.vertices_discovered, 63);
    for v in 1..64 {
        assert_eq!(st.levels.get(v), 1);
    }
}

#[test]
fn forced_directions_match_serial_across_threads() {
    let graphs = [
        ("erdos-renyi", gen::erdos_renyi(900, 7000, 31)),
        ("grid2d", gen::grid2d(20, 21)),
        ("barabasi-albert", gen::barabasi_albert(800, 3, 9)),
    ];
    for (name, g) in &graphs {
        let src = (0..g.num_vertices() as u32).find(|&v| g.degree(v) > 0).unwrap();
        let reference = serial_bfs(g, src);
        for threads in [1usize, 2, 4, 8] {
            for force in [ForcedDirection::AlwaysTopDown, ForcedDirection::AlwaysBottomUp] {
                let opts = BfsOptions {
                    hybrid: Some(HybridPolicy::forced(force)),
                    ..hybrid_opts(threads)
                };
                let r = run_bfs(Algorithm::Bfswsl, g, src, &opts);
                assert_eq!(
                    r.levels, reference.levels,
                    "forced {force:?} wrong on {name} (p={threads})"
                );
                let want = match force {
                    ForcedDirection::AlwaysTopDown => Direction::TopDown,
                    ForcedDirection::AlwaysBottomUp => Direction::BottomUp,
                };
                assert!(r.stats.directions.iter().all(|&d| d == want), "{name} p={threads}");
                assert_eq!(r.stats.direction_switches, 0);
            }
        }
    }
}

#[test]
fn bottom_up_uses_real_in_edges_on_directed_graphs() {
    // 0 -> 1 -> 2 plus 3 -> 2: bottom-up must probe in-edges (via the
    // transpose), not out-edges, or 2 would never find parent 1.
    let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (3, 2)]);
    let opts = BfsOptions {
        hybrid: Some(HybridPolicy::forced(ForcedDirection::AlwaysBottomUp)),
        ..hybrid_opts(2)
    };
    let r = run_bfs(Algorithm::Bfscl, &g, 0, &opts);
    assert_eq!(r.levels, vec![0, 1, 2, obfs_core::UNVISITED]);
}

#[test]
fn caller_provided_transpose_matches_owned_transpose() {
    let g = gen::rmat(10, 10, gen::RmatParams::default(), 17);
    let t = g.transpose();
    let src = (0..g.num_vertices() as u32).find(|&v| g.degree(v) > 0).unwrap();
    let reference = serial_bfs(&g, src);
    let opts = hybrid_opts(4);
    let runner = obfs_core::BfsRunner::new(4);
    let borrowed = runner.run_with_transpose(Algorithm::Bfswsl, &g, Some(&t), src, &opts);
    let owned = runner.run_with_transpose(Algorithm::Bfswsl, &g, None, src, &opts);
    assert_eq!(borrowed.levels, reference.levels);
    assert_eq!(owned.levels, reference.levels);
    assert_eq!(borrowed.stats.directions, owned.stats.directions);
}

#[test]
fn hybrid_conserves_level_counters_and_frontier_edges() {
    // The conservation invariant must keep holding with the new counter:
    // per-level frontier_edges deltas sum to the run total, and without
    // hybrid the counter stays zero.
    let g = gen::erdos_renyi(1000, 20_000, 41);
    let r = check_hybrid(&g, 0, &hybrid_opts(4));
    let sum: u64 = r.stats.level_stats.iter().map(|e| e.counters.frontier_edges).sum();
    assert_eq!(sum, r.stats.totals.frontier_edges);
    assert!(r.stats.totals.frontier_edges > 0);
    let plain = run_bfs(
        Algorithm::Bfscl,
        &g,
        0,
        &BfsOptions { threads: 4, ..BfsOptions::default() },
    );
    assert_eq!(plain.stats.totals.frontier_edges, 0, "counter must be free when hybrid is off");
    assert!(plain.stats.directions.is_empty());
}

#[test]
fn hybrid_works_for_every_parallel_algorithm() {
    let g = gen::erdos_renyi(600, 9000, 2);
    let reference = serial_bfs(&g, 0);
    for algo in Algorithm::ALL.into_iter().filter(|a| *a != Algorithm::Serial) {
        let r = run_bfs(algo, &g, 0, &hybrid_opts(4));
        assert_eq!(r.levels, reference.levels, "{algo} hybrid");
        assert_eq!(r.stats.directions.len() as u32, r.stats.levels, "{algo}");
    }
}

/// Compaction composes with the direction switch: forced-on compaction
/// over the hybrid heuristic must stay exact, compact *only* top-down
/// levels (a bottom-up level has no queue dispatch to replace), and keep
/// the per-level `compacted` flags conserved against the run total.
#[test]
fn compaction_composes_with_hybrid_direction_switching() {
    let graphs = [
        ("erdos-renyi", gen::erdos_renyi(900, 14_000, 27)),
        ("rmat", gen::rmat(10, 12, gen::RmatParams::default(), 7)),
    ];
    for (name, g) in &graphs {
        let src = (0..g.num_vertices() as u32).find(|&v| g.degree(v) > 0).unwrap();
        let reference = serial_bfs(g, src);
        for threads in [1usize, 2, 4] {
            let opts = BfsOptions {
                compaction: Some(CompactionPolicy::forced_on()),
                ..hybrid_opts(threads)
            };
            for algo in [Algorithm::Bfscl, Algorithm::Bfswsl] {
                let r = run_bfs(algo, g, src, &opts);
                assert_eq!(
                    r.levels, reference.levels,
                    "{algo} wrong on {name} (p={threads}, hybrid+compaction)"
                );
                check_self_consistent(g, src, &r)
                    .unwrap_or_else(|e| panic!("{algo} on {name}: invalid tree: {e}"));
                for e in &r.stats.level_stats {
                    assert!(
                        !e.compacted || e.direction == Direction::TopDown,
                        "{algo} on {name}: compacted a bottom-up level"
                    );
                }
                let flagged =
                    r.stats.level_stats.iter().filter(|e| e.compacted).count() as u32;
                assert_eq!(
                    flagged, r.stats.compacted_levels,
                    "{algo} on {name}: per-level flags disagree with the run total"
                );
                assert!(
                    r.stats.compacted_levels > 0,
                    "{algo} on {name}: forced-on hybrid run never compacted (p={threads})"
                );
            }
        }
    }
}
