//! End-to-end I/O pipeline tests: graphs survive serialization round
//! trips and produce identical BFS results afterwards — the path a user
//! takes when feeding the original Florida matrices into the harness.

use obfs::prelude::*;
use obfs_core::serial::serial_bfs;
use obfs_graph::io;
use std::io::BufReader;

#[test]
fn matrix_market_roundtrip_preserves_bfs() {
    let g = gen::barabasi_albert(500, 3, 13);
    let mut buf = Vec::new();
    io::write_matrix_market(&mut buf, &g).unwrap();
    let g2 = io::read_matrix_market(BufReader::new(buf.as_slice())).unwrap();
    assert_eq!(g, g2);
    let opts = BfsOptions { threads: 4, ..BfsOptions::default() };
    let r1 = run_bfs(Algorithm::Bfswsl, &g, 0, &opts);
    let r2 = run_bfs(Algorithm::Bfswsl, &g2, 0, &opts);
    assert_eq!(r1.levels, r2.levels);
}

#[test]
fn binary_csr_roundtrip_preserves_bfs() {
    let g = gen::rmat(10, 8, gen::RmatParams::default(), 2);
    let mut buf = Vec::new();
    io::write_binary_csr(&mut buf, &g).unwrap();
    let g2 = io::read_binary_csr(&mut buf.as_slice()).unwrap();
    assert_eq!(g, g2);
    assert_eq!(serial_bfs(&g, 0).levels, serial_bfs(&g2, 0).levels);
}

#[test]
fn edge_list_roundtrip_preserves_bfs() {
    let g = gen::erdos_renyi(400, 2400, 8);
    let mut buf = Vec::new();
    io::write_edge_list(&mut buf, &g).unwrap();
    let g2 = io::read_edge_list(BufReader::new(buf.as_slice()), Some(400)).unwrap();
    assert_eq!(g, g2);
}

#[test]
fn symmetric_matrix_market_drives_parallel_bfs() {
    // Hand-written symmetric MM file (the FSMC format for undirected
    // matrices): parse, then run the full algorithm roster on it.
    let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                % small test mesh\n\
                6 6 6\n\
                2 1\n3 2\n4 3\n5 4\n6 5\n6 1\n";
    let g = io::read_matrix_market(BufReader::new(text.as_bytes())).unwrap();
    assert_eq!(g.num_vertices(), 6);
    assert_eq!(g.num_edges(), 12); // mirrored
    let reference = serial_bfs(&g, 0);
    assert_eq!(reference.depth(), 3); // cycle of 6
    let opts = BfsOptions { threads: 3, ..BfsOptions::default() };
    for algo in Algorithm::ALL {
        let r = run_bfs(algo, &g, 0, &opts);
        assert_eq!(r.levels, reference.levels, "{algo}");
    }
}

#[test]
fn file_based_roundtrip_via_tempdir() {
    let dir = std::env::temp_dir().join(format!("obfs-io-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("graph.bin");
    let g = gen::grid2d(20, 25);
    {
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
        io::write_binary_csr(&mut f, &g).unwrap();
    }
    let g2 = {
        let mut f = std::io::BufReader::new(std::fs::File::open(&path).unwrap());
        io::read_binary_csr(&mut f).unwrap()
    };
    assert_eq!(g, g2);
    std::fs::remove_dir_all(&dir).ok();
}
