//! Flight-recorder integration tests (`--features trace`).
//!
//! The recorder must (1) capture the worker lifecycle with exact event
//! counts, (2) stay off unless requested, and (3) — together with the
//! `chaos` feature — show injected faults and watchdog degradations as
//! events that agree with the aggregate counters and the per-level
//! series, so the three observability surfaces (RunStats, LevelStats,
//! flight events) can never silently diverge.
#![cfg(feature = "trace")]

use obfs::core::flight::{kind, to_chrome_trace};
use obfs::prelude::*;

/// Every worker's ring must hold its lifecycle: one WORKER_BEGIN/END
/// pair, one LEVEL_START/END pair per executed level, monotone
/// timestamps, and no unknown kind codes — while the traversal itself
/// stays correct.
#[test]
fn recorder_captures_worker_lifecycle_exactly() {
    let g = gen::erdos_renyi(700, 4900, 19);
    let reference = serial_bfs(&g, 0);
    let threads = 4usize;
    let opts = BfsOptions {
        threads,
        flight_recorder: Some(1 << 14),
        ..Default::default()
    };
    for algo in [Algorithm::Bfscl, Algorithm::Bfswsl, Algorithm::EdgeCl] {
        let r = run_bfs(algo, &g, 0, &opts);
        assert_eq!(r.levels, reference.levels, "{algo}");
        let rec = r.stats.flight.as_ref().unwrap_or_else(|| panic!("{algo}: no recording"));
        assert_eq!(rec.workers.len(), threads, "{algo}: one ring per worker");
        assert_eq!(rec.total_dropped(), 0, "{algo}: ring wrapped on a small graph");
        assert_eq!(rec.count(kind::WORKER_BEGIN), threads, "{algo}");
        assert_eq!(rec.count(kind::WORKER_END), threads, "{algo}");
        let levels_run = r.stats.levels as usize;
        assert_eq!(rec.count(kind::LEVEL_START), threads * levels_run, "{algo}");
        assert_eq!(rec.count(kind::LEVEL_END), threads * levels_run, "{algo}");
        assert_eq!(rec.count(kind::DEGRADED), 0, "{algo}: no watchdog armed");
        for (tid, w) in rec.workers.iter().enumerate() {
            assert!(!w.events.is_empty(), "{algo}: worker {tid} recorded nothing");
            assert!(
                w.events.windows(2).all(|p| p[0].ts_us <= p[1].ts_us),
                "{algo}: worker {tid} timestamps not monotone"
            );
            for e in &w.events {
                assert_ne!(kind::name(e.kind), "unknown", "{algo}: kind {}", e.kind);
            }
        }
        // The exporter must accept whatever a real run produced.
        let trace = to_chrome_trace(rec);
        assert!(trace.starts_with("{\"displayTimeUnit\":\"ms\""));
        assert!(trace.contains("\"name\":\"worker\""));
    }
}

/// Steal-heavy variants must leave steal events in the rings, and the
/// event counts must agree with the merged `StealCounters`.
#[test]
fn steal_events_match_steal_counters() {
    let g = gen::barabasi_albert(900, 4, 31);
    let opts = BfsOptions {
        threads: 4,
        flight_recorder: Some(1 << 15),
        ..Default::default()
    };
    for algo in [Algorithm::Bfsws, Algorithm::Bfswsl] {
        let r = run_bfs(algo, &g, 0, &opts);
        let rec = r.stats.flight.as_ref().unwrap();
        assert_eq!(rec.total_dropped(), 0, "{algo}: ring too small for exact counts");
        let steal = &r.stats.totals.steal;
        assert_eq!(
            rec.count(kind::STEAL_SUCCESS) as u64,
            steal.success,
            "{algo}: success events != success counter"
        );
        assert_eq!(
            rec.count(kind::STEAL_FAIL) as u64,
            steal.failed(),
            "{algo}: fail events != failed() counter"
        );
    }
}

/// Hybrid direction switches are leader-recorded events: the DIR_SWITCH
/// count must equal the number of adjacent direction changes in the
/// recorded per-level series (= `RunStats::direction_switches`), the
/// payloads must carry valid direction codes consistent with the series,
/// and the events must survive the chrome exporter.
#[test]
fn direction_switch_events_match_recorded_directions() {
    // Dense low-diameter RMAT: the heuristic provably switches at least
    // once (asserted below), so the test can't pass vacuously.
    let g = gen::rmat(10, 16, gen::RmatParams::default(), 3);
    let src = (0..g.num_vertices() as u32).find(|&v| g.degree(v) > 0).unwrap();
    let reference = serial_bfs(&g, src);
    let opts = BfsOptions {
        threads: 4,
        hybrid: Some(HybridPolicy::default()),
        flight_recorder: Some(1 << 15),
        ..Default::default()
    };
    for algo in [Algorithm::Bfscl, Algorithm::Bfswsl] {
        let r = run_bfs(algo, &g, src, &opts);
        assert_eq!(r.levels, reference.levels, "{algo}");
        let switches: u32 =
            r.stats.directions.windows(2).map(|w| u32::from(w[0] != w[1])).sum();
        assert!(switches > 0, "{algo}: dense RMAT never switched direction");
        assert_eq!(switches, r.stats.direction_switches, "{algo}");
        let rec = r.stats.flight.as_ref().unwrap();
        assert_eq!(rec.total_dropped(), 0, "{algo}: ring too small for exact counts");
        assert_eq!(
            rec.count(kind::DIR_SWITCH) as u32,
            r.stats.direction_switches,
            "{algo}: one leader-recorded event per direction change"
        );
        // Each event's payload: `level` names the level that runs in the
        // new direction, `a`/`b` are (new, old) codes matching the series.
        let code = |d: Direction| match d {
            Direction::TopDown => kind::DIR_TOP_DOWN,
            Direction::BottomUp => kind::DIR_BOTTOM_UP,
        };
        for w in &rec.workers {
            for e in w.events.iter().filter(|e| e.kind == kind::DIR_SWITCH) {
                let lvl = e.level as usize;
                assert!(lvl > 0 && lvl < r.stats.directions.len(), "{algo}: level {lvl}");
                assert_eq!(e.a, code(r.stats.directions[lvl]), "{algo}: new-dir payload");
                assert_eq!(e.b, code(r.stats.directions[lvl - 1]), "{algo}: old-dir payload");
                assert_ne!(e.a, e.b, "{algo}: switch event without a change");
            }
        }
        let trace = to_chrome_trace(rec);
        assert!(
            trace.contains("direction-switch"),
            "{algo}: DIR_SWITCH events must survive the exporter"
        );
    }
}

/// Hybrid runs that never leave top-down (forced override) record no
/// DIR_SWITCH events — the taxonomy stays quiet instead of noisy.
#[test]
fn no_switch_events_without_a_switch() {
    let g = gen::erdos_renyi(500, 3000, 11);
    let opts = BfsOptions {
        threads: 4,
        hybrid: Some(HybridPolicy::forced(ForcedDirection::AlwaysTopDown)),
        flight_recorder: Some(1 << 14),
        ..Default::default()
    };
    let r = run_bfs(Algorithm::Bfscl, &g, 0, &opts);
    let rec = r.stats.flight.as_ref().unwrap();
    assert_eq!(rec.count(kind::DIR_SWITCH), 0);
    assert_eq!(r.stats.direction_switches, 0);
}

/// Prefix-sum compaction is a leader decision, so it must leave exactly
/// one COMPACT event per compacted level: the event count equals
/// `RunStats::compacted_levels` (and the per-level `compacted` flags),
/// each payload carries the predicted frontier size (`a > 0`) and the
/// dispatched kernel backend (`b` = [`ScanBackend::code`]), and the
/// events survive the chrome exporter under their taxonomy name.
#[test]
fn compact_events_match_compacted_level_count() {
    let g = gen::erdos_renyi(700, 4900, 29);
    let reference = serial_bfs(&g, 0);
    let opts = BfsOptions {
        threads: 4,
        compaction: Some(CompactionPolicy::forced_on()),
        flight_recorder: Some(1 << 15),
        collect_level_stats: true,
        ..Default::default()
    };
    for algo in [Algorithm::Bfscl, Algorithm::Bfswsl] {
        let r = run_bfs(algo, &g, 0, &opts);
        assert_eq!(r.levels, reference.levels, "{algo}");
        assert!(r.stats.compacted_levels > 0, "{algo}: forced-on never compacted");
        let rec = r.stats.flight.as_ref().unwrap();
        assert_eq!(rec.total_dropped(), 0, "{algo}: ring too small for exact counts");
        assert_eq!(
            rec.count(kind::COMPACT) as u32,
            r.stats.compacted_levels,
            "{algo}: one leader-recorded COMPACT event per compacted level"
        );
        let flagged = r.stats.level_stats.iter().filter(|e| e.compacted).count() as u32;
        assert_eq!(flagged, r.stats.compacted_levels, "{algo}: series flags disagree");
        let backend = r.stats.kernel_backend.expect("compacted run must report a backend");
        for w in &rec.workers {
            for e in w.events.iter().filter(|e| e.kind == kind::COMPACT) {
                assert!(e.a > 0, "{algo}: compacted an empty frontier");
                assert_eq!(e.b, backend.code(), "{algo}: backend payload mismatch");
            }
        }
        let trace = to_chrome_trace(rec);
        assert!(
            trace.contains("\"name\":\"compact\""),
            "{algo}: COMPACT events must survive the exporter"
        );
    }
}

/// The dispatched kernel backend is probed once per process, so its
/// identity must be bit-stable: COMPACT payloads agree across repeated
/// runs, and a recording replayed through the chrome-trace round trip
/// reports the same backend code as the original.
#[test]
fn dispatch_backend_identity_survives_replay() {
    use obfs::core::flight::parse_chrome_trace;
    let g = gen::erdos_renyi(600, 4200, 37);
    let opts = BfsOptions {
        threads: 4,
        compaction: Some(CompactionPolicy::forced_on()),
        flight_recorder: Some(1 << 15),
        ..Default::default()
    };
    let backend_codes = |rec: &obfs::core::flight::FlightRecording| -> Vec<u64> {
        rec.workers
            .iter()
            .flat_map(|w| w.events.iter())
            .filter(|e| e.kind == kind::COMPACT)
            .map(|e| e.b)
            .collect()
    };
    let a = run_bfs(Algorithm::Bfscl, &g, 0, &opts);
    let b = run_bfs(Algorithm::Bfscl, &g, 0, &opts);
    assert_eq!(
        a.stats.kernel_backend, b.stats.kernel_backend,
        "probe must be cached per process"
    );
    let rec = a.stats.flight.as_ref().unwrap();
    let original = backend_codes(rec);
    assert!(!original.is_empty(), "forced-on run recorded no COMPACT events");
    assert_eq!(original, backend_codes(b.stats.flight.as_ref().unwrap()));
    let replayed = parse_chrome_trace(&to_chrome_trace(rec)).expect("round trip");
    assert_eq!(
        backend_codes(&replayed),
        original,
        "replayed recording must report the identical backend"
    );
    let code = a.stats.kernel_backend.unwrap().code();
    assert!(original.iter().all(|&c| c == code), "payloads disagree with RunStats");
}

/// Without the option the recorder must not run, even on trace builds.
#[test]
fn no_recording_unless_requested() {
    let g = gen::grid2d(20, 20);
    let opts = BfsOptions { threads: 3, ..Default::default() };
    let r = run_bfs(Algorithm::Bfswl, &g, 0, &opts);
    assert!(r.stats.flight.is_none());
}

/// Serial BFS never spawns workers, so it never records.
#[test]
fn serial_never_records() {
    let g = gen::path(200);
    let opts = BfsOptions {
        threads: 1,
        flight_recorder: Some(1024),
        ..Default::default()
    };
    let r = run_bfs(Algorithm::Serial, &g, 0, &opts);
    assert!(r.stats.flight.is_none());
}

/// Chaos × trace interaction: faults and degradations must be visible in
/// all three observability surfaces at once, and the surfaces must agree.
#[cfg(feature = "chaos")]
mod chaos_interaction {
    use super::*;

    /// Injected faults appear as FAULT events, and the per-level series'
    /// `injected_faults` deltas sum to the run total.
    #[test]
    fn faults_are_events_and_series_conserves_them() {
        let g = gen::erdos_renyi(600, 4200, 5);
        let reference = serial_bfs(&g, 0);
        let opts = BfsOptions {
            threads: 4,
            chaos: Some(ChaosConfig::store_buffer(0xFA17)),
            flight_recorder: Some(1 << 15),
            collect_level_stats: true,
            ..Default::default()
        };
        let r = run_bfs(Algorithm::Bfscl, &g, 0, &opts);
        assert_eq!(r.levels, reference.levels);
        let total = r.stats.totals.injected_faults;
        assert!(total > 0, "plan installed but no faults injected");
        let rec = r.stats.flight.as_ref().unwrap();
        assert!(rec.count(kind::FAULT) > 0, "faults injected but no FAULT events");
        let series_sum: u64 =
            r.stats.level_stats.iter().map(|l| l.counters.injected_faults).sum();
        assert_eq!(series_sum, total, "per-level fault deltas must sum to the total");
        // Fault events carry a valid cause code.
        for w in &rec.workers {
            for e in w.events.iter().filter(|e| e.kind == kind::FAULT) {
                assert!(
                    (kind::FAULT_DELAY..=kind::FAULT_SKEW).contains(&e.a),
                    "bad fault cause {}",
                    e.a
                );
            }
        }
    }

    /// A zero deadline degrades every level; the DEGRADED events, the
    /// series' degraded flags, and `RunStats::degraded_levels` must all
    /// report the same count.
    #[test]
    fn degraded_levels_agree_across_surfaces() {
        let g = gen::erdos_renyi(500, 3500, 9);
        let reference = serial_bfs(&g, 0);
        let opts = BfsOptions {
            threads: 4,
            watchdog: Some(WatchdogPolicy::deadline(std::time::Duration::ZERO)),
            flight_recorder: Some(1 << 15),
            collect_level_stats: true,
            ..Default::default()
        };
        let r = run_bfs(Algorithm::Bfswsl, &g, 0, &opts);
        assert_eq!(r.levels, reference.levels);
        assert_eq!(r.stats.degraded_levels, r.stats.levels);
        let rec = r.stats.flight.as_ref().unwrap();
        assert_eq!(
            rec.count(kind::DEGRADED) as u32,
            r.stats.degraded_levels,
            "one leader-recorded DEGRADED event per degraded level"
        );
        let flagged = r.stats.level_stats.iter().filter(|l| l.degraded).count() as u32;
        assert_eq!(flagged, r.stats.degraded_levels, "series flags disagree");
    }
}
