//! Property-based tests (proptest): randomized graphs, sources and
//! tuning options against the serial reference, plus structural
//! invariants of the bag and the frontier queues.

use obfs::prelude::*;
use obfs_baselines::Bag;
use obfs_core::serial::serial_bfs;
use proptest::prelude::*;

/// Random directed graph as (n, edge list).
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..120).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n as u32, 0..n as u32), 0..(n * 6));
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n).dedup(false).allow_self_loops(true);
    b.extend(edges.iter().copied());
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Every parallel algorithm equals serial BFS on arbitrary graphs,
    /// sources, and thread counts.
    #[test]
    fn parallel_equals_serial((n, edges) in arb_graph(), src_raw in 0u32..120, threads in 1usize..6) {
        let g = build(n, &edges);
        let src = src_raw % n as u32;
        let reference = serial_bfs(&g, src);
        let opts = BfsOptions { threads, ..BfsOptions::default() };
        for algo in Algorithm::ALL {
            let r = run_bfs(algo, &g, src, &opts);
            prop_assert_eq!(&r.levels, &reference.levels, "{} (p={})", algo, threads);
        }
    }

    /// Parents always form a valid BFS tree, whichever tree the races
    /// picked.
    #[test]
    fn parents_always_valid((n, edges) in arb_graph(), threads in 1usize..5) {
        let g = build(n, &edges);
        let opts = BfsOptions { threads, record_parents: true, ..BfsOptions::default() };
        for algo in [Algorithm::Bfscl, Algorithm::Bfswl, Algorithm::Bfswsl] {
            let r = run_bfs(algo, &g, 0, &opts);
            prop_assert!(obfs::core::validate::check_self_consistent(&g, 0, &r).is_ok());
        }
    }

    /// Scale-free two-phase handling is correct for every hub threshold.
    #[test]
    fn any_hub_threshold_is_correct((n, edges) in arb_graph(), thr in 0usize..32) {
        let g = build(n, &edges);
        let reference = serial_bfs(&g, 0);
        let opts = BfsOptions {
            threads: 4,
            hub_threshold: Some(thr),
            ..BfsOptions::default()
        };
        for algo in [Algorithm::Bfsws, Algorithm::Bfswsl] {
            let r = run_bfs(algo, &g, 0, &opts);
            prop_assert_eq!(&r.levels, &reference.levels, "{} thr={}", algo, thr);
        }
    }

    /// Bag insert/union/split maintain the element multiset and the
    /// binary-counter size law.
    #[test]
    fn bag_multiset_invariants(xs in prop::collection::vec(0u32..10_000, 0..400), cut in 0usize..400) {
        let cut = cut.min(xs.len());
        let mut a = Bag::new();
        let mut b = Bag::new();
        for &x in &xs[..cut] { a.insert(x); }
        for &x in &xs[cut..] { b.insert(x); }
        prop_assert_eq!(a.len(), cut);
        prop_assert_eq!(b.len(), xs.len() - cut);
        a.union(b);
        prop_assert_eq!(a.len(), xs.len());
        let mut expect = xs.clone();
        expect.sort_unstable();
        prop_assert_eq!(a.to_sorted_vec(), expect.clone());
        // Split preserves the multiset and halves evenly.
        let other = a.split();
        prop_assert!(a.len().abs_diff(other.len()) <= 1);
        let mut merged = a.to_sorted_vec();
        merged.extend(other.to_sorted_vec());
        merged.sort_unstable();
        prop_assert_eq!(merged, expect);
    }

    /// CSR construction is faithful: neighbors(v) is exactly the multiset
    /// of targets of v's edges, and transpose twice is the identity.
    #[test]
    fn csr_faithful((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        prop_assert_eq!(g.num_edges() as usize, edges.len());
        let mut expected: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(u, v) in &edges { expected[u as usize].push(v); }
        for v in 0..n as u32 {
            let mut got = g.neighbors(v).to_vec();
            got.sort_unstable();
            expected[v as usize].sort_unstable();
            prop_assert_eq!(&got, &expected[v as usize]);
        }
        prop_assert_eq!(g.transpose().transpose(), g);
    }

    /// Reached counts are monotone under edge addition (BFS sanity).
    #[test]
    fn reachability_monotone((n, edges) in arb_graph(), extra in prop::collection::vec((0u32..120, 0u32..120), 1..10)) {
        let g1 = build(n, &edges);
        let mut all = edges.clone();
        all.extend(extra.iter().map(|&(u, v)| (u % n as u32, v % n as u32)));
        let g2 = build(n, &all);
        let r1 = serial_bfs(&g1, 0);
        let r2 = serial_bfs(&g2, 0);
        prop_assert!(r2.reached() >= r1.reached());
        // and levels can only shrink
        for v in 0..n {
            prop_assert!(r2.levels[v] <= r1.levels[v]);
        }
    }
}
