//! Randomized property tests: seeded graphs, sources and tuning options
//! against the serial reference, plus structural invariants of the bag
//! and the frontier queues.
//!
//! The build is fully offline, so instead of an external property-test
//! framework these use the workspace's own deterministic PRNG
//! ([`obfs_util::Xoshiro256StarStar`]): each property runs a fixed number
//! of seeded random cases, and every failure message carries the case
//! index so a regression is reproducible by construction.

use obfs::prelude::*;
use obfs_baselines::Bag;
use obfs_core::serial::serial_bfs;
use obfs_util::Xoshiro256StarStar;

/// Number of random cases per property (mirrors the old proptest config).
const CASES: u64 = 48;

/// Random directed graph: `n ∈ [2, 120)`, up to `6n` arbitrary edges
/// (self-loops and duplicates allowed — the builder must cope).
fn arb_graph(rng: &mut Xoshiro256StarStar) -> (usize, Vec<(u32, u32)>) {
    let n = 2 + rng.below_usize(118);
    let m = rng.below_usize(n * 6);
    let edges = (0..m)
        .map(|_| (rng.below(n as u64) as u32, rng.below(n as u64) as u32))
        .collect();
    (n, edges)
}

fn build(n: usize, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n).dedup(false).allow_self_loops(true);
    b.extend(edges.iter().copied());
    b.build()
}

/// Every parallel algorithm equals serial BFS on arbitrary graphs,
/// sources, and thread counts.
#[test]
fn parallel_equals_serial() {
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::for_stream(0x9A11, case);
        let (n, edges) = arb_graph(&mut rng);
        let g = build(n, &edges);
        let src = rng.below(n as u64) as u32;
        let threads = 1 + rng.below_usize(5);
        let reference = serial_bfs(&g, src);
        let opts = BfsOptions { threads, ..BfsOptions::default() };
        for algo in Algorithm::ALL {
            let r = run_bfs(algo, &g, src, &opts);
            assert_eq!(r.levels, reference.levels, "case {case}: {algo} (p={threads})");
        }
    }
}

/// Parents always form a valid BFS tree, whichever tree the races picked.
#[test]
fn parents_always_valid() {
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::for_stream(0x9A12, case);
        let (n, edges) = arb_graph(&mut rng);
        let g = build(n, &edges);
        let threads = 1 + rng.below_usize(4);
        let opts = BfsOptions { threads, record_parents: true, ..BfsOptions::default() };
        for algo in [Algorithm::Bfscl, Algorithm::Bfswl, Algorithm::Bfswsl] {
            let r = run_bfs(algo, &g, 0, &opts);
            assert!(
                obfs::core::validate::check_self_consistent(&g, 0, &r).is_ok(),
                "case {case}: {algo} (p={threads})"
            );
        }
    }
}

/// Scale-free two-phase handling is correct for every hub threshold.
#[test]
fn any_hub_threshold_is_correct() {
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::for_stream(0x9A13, case);
        let (n, edges) = arb_graph(&mut rng);
        let g = build(n, &edges);
        let thr = rng.below_usize(32);
        let reference = serial_bfs(&g, 0);
        let opts = BfsOptions {
            threads: 4,
            hub_threshold: Some(thr),
            ..BfsOptions::default()
        };
        for algo in [Algorithm::Bfsws, Algorithm::Bfswsl] {
            let r = run_bfs(algo, &g, 0, &opts);
            assert_eq!(r.levels, reference.levels, "case {case}: {algo} thr={thr}");
        }
    }
}

/// Bag insert/union/split maintain the element multiset and the
/// binary-counter size law.
#[test]
fn bag_multiset_invariants() {
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::for_stream(0x9A14, case);
        let len = rng.below_usize(400);
        let xs: Vec<u32> = (0..len).map(|_| rng.below(10_000) as u32).collect();
        let cut = rng.below_usize(400).min(xs.len());
        let mut a = Bag::new();
        let mut b = Bag::new();
        for &x in &xs[..cut] {
            a.insert(x);
        }
        for &x in &xs[cut..] {
            b.insert(x);
        }
        assert_eq!(a.len(), cut, "case {case}");
        assert_eq!(b.len(), xs.len() - cut, "case {case}");
        a.union(b);
        assert_eq!(a.len(), xs.len(), "case {case}");
        let mut expect = xs.clone();
        expect.sort_unstable();
        assert_eq!(a.to_sorted_vec(), expect, "case {case}");
        // Split preserves the multiset and halves evenly.
        let other = a.split();
        assert!(a.len().abs_diff(other.len()) <= 1, "case {case}");
        let mut merged = a.to_sorted_vec();
        merged.extend(other.to_sorted_vec());
        merged.sort_unstable();
        assert_eq!(merged, expect, "case {case}");
    }
}

/// CSR construction is faithful: neighbors(v) is exactly the multiset of
/// targets of v's edges, and transpose twice is the identity.
#[test]
fn csr_faithful() {
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::for_stream(0x9A15, case);
        let (n, edges) = arb_graph(&mut rng);
        let g = build(n, &edges);
        assert_eq!(g.num_edges() as usize, edges.len(), "case {case}");
        let mut expected: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(u, v) in &edges {
            expected[u as usize].push(v);
        }
        for v in 0..n as u32 {
            let mut got = g.neighbors(v).to_vec();
            got.sort_unstable();
            expected[v as usize].sort_unstable();
            assert_eq!(got, expected[v as usize], "case {case}: vertex {v}");
        }
        assert_eq!(g.transpose().transpose(), g, "case {case}");
    }
}

/// The parallel three-pass exclusive prefix sum is element-for-element
/// equal to the serial scan across the edge-case lengths (empty, one,
/// around the thread count, block-boundary + ragged tail) and thread
/// counts — the compaction pipeline's core reduction, pinned exactly.
#[test]
fn parallel_prefix_sum_equals_serial_scan() {
    use obfs::core::scan::{exclusive_scan, parallel_exclusive_scan};
    use obfs_runtime::LevelPool;
    for threads in [1usize, 2, 4, 8] {
        let pool = LevelPool::new(threads);
        let lengths =
            [0, 1, threads.saturating_sub(1), threads, 4096, 4096 + 37, 4096 + threads];
        for (case, &len) in lengths.iter().enumerate() {
            let mut rng = Xoshiro256StarStar::for_stream(0x9A17, (threads * 100 + case) as u64);
            let xs: Vec<u64> = (0..len).map(|_| rng.below(1 << 20)).collect();
            assert_eq!(
                parallel_exclusive_scan(&pool, &xs),
                exclusive_scan(&xs),
                "p={threads} len={len}"
            );
        }
    }
}

/// Materializing a random bitmap through the compaction pipeline
/// (per-chunk popcounts → exclusive block prefix → per-chunk set-bit
/// emission into disjoint ranges) reproduces the plain ascending
/// enumeration of its set bits exactly — same *set* of vertices and the
/// same stable per-chunk order — for every thread split and for both
/// scan kernels.
#[test]
fn compacted_frontier_equals_queue_derived_frontier() {
    use obfs::core::frontier::{FrontierBitmap, BITMAP_WORD_BITS};
    use obfs::core::scan::{
        block_prefix, block_range, for_each_set, popcount_words, COMPACT_CHUNK_WORDS,
    };
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::for_stream(0x9A18, case);
        // Up to ~6 chunks of bitmap so every case crosses chunk and
        // block boundaries somewhere; density varies wildly per word.
        let n = 1 + rng.below_usize(6 * COMPACT_CHUNK_WORDS * BITMAP_WORD_BITS);
        let bm = FrontierBitmap::new(n);
        let words = bm.word_count();
        for wi in 0..words {
            let w = match rng.below(4) {
                0 => 0,
                1 => !0u32,
                _ => (rng.next_u64() & rng.next_u64()) as u32,
            };
            // Mask out-of-range tail bits so "set bit" == "vertex".
            let base = wi * BITMAP_WORD_BITS;
            let lim = BITMAP_WORD_BITS.min(n - base.min(n));
            bm.set_word(wi, if lim == BITMAP_WORD_BITS { w } else { w & !(!0u32 << lim) });
        }
        // Queue-derived reference: plain ascending enumeration.
        let mut reference = Vec::new();
        for_each_set(ScanBackend::Wordwise, &bm, 0, words, |v| reference.push(v));
        let chunks = words.div_ceil(COMPACT_CHUNK_WORDS);
        for threads in [1usize, 2, 4, 8] {
            for backend in [ScanBackend::Wordwise, ScanBackend::Scalar] {
                // Pass 1: per-chunk popcounts and per-block totals.
                let counts: Vec<u64> = (0..chunks)
                    .map(|c| {
                        let wlo = c * COMPACT_CHUNK_WORDS;
                        let whi = (wlo + COMPACT_CHUNK_WORDS).min(words);
                        popcount_words(backend, &bm, wlo, whi)
                    })
                    .collect();
                let totals: Vec<u64> = (0..threads)
                    .map(|tid| {
                        let (lo, hi) = block_range(chunks, threads, tid);
                        counts[lo..hi].iter().sum()
                    })
                    .collect();
                // Passes 2+3: every worker emits its chunks into the
                // disjoint range the block prefix assigns it.
                let mut out = vec![usize::MAX; reference.len()];
                for tid in 0..threads {
                    let (lo, hi) = block_range(chunks, threads, tid);
                    let mut off = block_prefix(&totals, tid) as usize;
                    for c in lo..hi {
                        let wlo = c * COMPACT_CHUNK_WORDS;
                        let whi = (wlo + COMPACT_CHUNK_WORDS).min(words);
                        for_each_set(backend, &bm, wlo, whi, |v| {
                            out[off] = v;
                            off += 1;
                        });
                    }
                    assert_eq!(
                        off as u64,
                        block_prefix(&totals, tid) + totals[tid],
                        "case {case}: p={threads} tid={tid} {backend}"
                    );
                }
                assert_eq!(out, reference, "case {case}: p={threads} {backend}");
            }
        }
    }
}

/// Reached counts are monotone under edge addition (BFS sanity).
#[test]
fn reachability_monotone() {
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::for_stream(0x9A16, case);
        let (n, edges) = arb_graph(&mut rng);
        let g1 = build(n, &edges);
        let extra = 1 + rng.below_usize(9);
        let mut all = edges.clone();
        all.extend(
            (0..extra).map(|_| (rng.below(n as u64) as u32, rng.below(n as u64) as u32)),
        );
        let g2 = build(n, &all);
        let r1 = serial_bfs(&g1, 0);
        let r2 = serial_bfs(&g2, 0);
        assert!(r2.reached() >= r1.reached(), "case {case}");
        // and levels can only shrink
        for v in 0..n {
            assert!(r2.levels[v] <= r1.levels[v], "case {case}: vertex {v}");
        }
    }
}
