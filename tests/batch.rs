//! Differential test matrix for batched bit-parallel multi-source BFS.
//!
//! The batched kernel answers up to 64 sources in one traversal by
//! carrying a `u64` membership word per vertex. This matrix pins it to
//! the ground truth: for every (graph, algorithm, thread count, batch
//! size) cell, each query's level array must be **bitwise identical** to
//! an independent single-source serial run from the same source, and the
//! recorded parent tree must be exact-level self-consistent. Any lost
//! membership bit, cross-query bleed, or push-dedup hole shows up as a
//! level mismatch here.

use obfs::prelude::*;
use obfs_core::validate::check_self_consistent;
use obfs_core::{BfsRunner, UNVISITED};

/// Parallel algorithms under test (all of them; Serial is the oracle and
/// also has its own batch entry, exercised in `serial_batch_entry`).
const PARALLEL: [Algorithm; 8] = [
    Algorithm::Bfsc,
    Algorithm::Bfscl,
    Algorithm::Bfsdl,
    Algorithm::Bfsw,
    Algorithm::Bfswl,
    Algorithm::Bfsws,
    Algorithm::Bfswsl,
    Algorithm::EdgeCl,
];

/// Deterministic source list: k spread-out vertices, including repeats
/// when `dup` is set (duplicate sources must yield identical columns).
fn pick_sources(n: usize, k: usize, stride: usize, dup: bool) -> Vec<u32> {
    (0..k)
        .map(|q| {
            let q = if dup { q / 2 } else { q }; // pairs of duplicates
            ((q * stride + 1) % n) as u32
        })
        .collect()
}

/// Check one batched run against per-source serial oracles.
fn check_batch(
    g: &CsrGraph,
    batch: &BatchResult,
    sources: &[u32],
    tag: &str,
) {
    assert_eq!(batch.queries.len(), sources.len(), "{tag}: wrong batch size");
    for (q, qr) in batch.queries.iter().enumerate() {
        assert_eq!(qr.source, sources[q], "{tag}: query {q} source mismatch");
        let oracle = serial_bfs(g, sources[q]);
        assert_eq!(
            qr.levels, oracle.levels,
            "{tag}: query {q} (src {}) levels diverge from serial",
            sources[q]
        );
        if qr.parents.is_some() {
            let r = qr.as_bfs_result(&batch.stats);
            check_self_consistent(g, sources[q], &r)
                .unwrap_or_else(|e| panic!("{tag}: query {q} invalid parent tree: {e}"));
        }
    }
}

fn families() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("path", gen::path(400)),
        ("star", gen::star(300)),
        ("erdos-renyi", gen::erdos_renyi(1200, 9000, 41)),
        ("barabasi-albert", gen::barabasi_albert(800, 3, 43)),
        ("grid2d", gen::grid2d(25, 31)),
        (
            "disconnected",
            CsrGraph::from_edges(
                500,
                &[(0, 1), (1, 2), (2, 3), (100, 101), (101, 102), (300, 301)],
            ),
        ),
    ]
}

/// The core matrix: graphs × all parallel algorithms × threads
/// {1, 2, 4, 8} × batch sizes {1, 2, 17, 64}.
#[test]
fn batched_matches_independent_serial_runs() {
    for (name, g) in families() {
        let n = g.num_vertices();
        for &threads in &[1usize, 2, 4, 8] {
            let runner = BfsRunner::new(threads);
            let opts = BfsOptions { threads, record_parents: true, ..BfsOptions::default() };
            for &k in &[1usize, 2, 17, 64] {
                let sources = pick_sources(n, k, n / k + 3, false);
                for &algo in &PARALLEL {
                    let b = runner.run_batch(algo, &g, &sources, &opts);
                    check_batch(&g, &b, &sources, &format!("{name}/{algo}/p{threads}/k{k}"));
                }
            }
        }
    }
}

/// Duplicate sources in one batch: every copy must produce an identical
/// column (first-claim races between twin queries are still per-slot).
#[test]
fn duplicate_sources_yield_identical_columns() {
    let g = gen::erdos_renyi(900, 6300, 47);
    let opts = BfsOptions { threads: 4, record_parents: true, ..BfsOptions::default() };
    let runner = BfsRunner::new(4);
    for &k in &[2usize, 17, 64] {
        let sources = pick_sources(g.num_vertices(), k, 89, true);
        for &algo in &PARALLEL {
            let b = runner.run_batch(algo, &g, &sources, &opts);
            check_batch(&g, &b, &sources, &format!("dup/{algo}/k{k}"));
            for pair in b.queries.chunks(2) {
                if pair.len() == 2 && pair[0].source == pair[1].source {
                    assert_eq!(
                        pair[0].levels, pair[1].levels,
                        "{algo}/k{k}: twin queries disagree"
                    );
                }
            }
        }
    }
}

/// Hybrid direction-switching batch runs: bottom-up levels rebuild the
/// frontier words (`front_by`) and claim via in-edge probes; results must
/// still match serial, including when the direction is forced.
#[test]
fn hybrid_batches_match_serial() {
    let g = gen::barabasi_albert(1000, 4, 53); // dense core → real switches
    let sources = pick_sources(g.num_vertices(), 17, 59, false);
    for &threads in &[1usize, 4] {
        let runner = BfsRunner::new(threads);
        for policy in [
            HybridPolicy::default(),
            HybridPolicy::forced(ForcedDirection::AlwaysBottomUp),
            HybridPolicy::forced(ForcedDirection::AlwaysTopDown),
        ] {
            let opts = BfsOptions {
                threads,
                record_parents: true,
                hybrid: Some(policy),
                ..BfsOptions::default()
            };
            for algo in [Algorithm::Bfscl, Algorithm::Bfswl, Algorithm::Bfswsl] {
                let b = runner.run_batch(algo, &g, &sources, &opts);
                check_batch(&g, &b, &sources, &format!("hybrid/{algo}/p{threads}"));
            }
        }
    }
}

/// The `Algorithm::Serial` batch entry (a loop of serial runs) is the
/// shape the engine falls back to; it must agree with the oracle too and
/// merge stats across queries.
#[test]
fn serial_batch_entry() {
    let g = gen::grid2d(20, 20);
    let sources = pick_sources(g.num_vertices(), 5, 71, false);
    let opts = BfsOptions { record_parents: true, ..BfsOptions::default() };
    let b = run_batch(Algorithm::Serial, &g, &sources, &opts);
    check_batch(&g, &b, &sources, "serial-batch");
    assert!(b.stats.totals.vertices_explored >= g.num_vertices() as u64);
}

/// Sources sitting in different components: membership words must not
/// bleed reachability across components (query q's column stays
/// UNVISITED outside its own component).
#[test]
fn disconnected_components_stay_isolated() {
    let g = CsrGraph::from_edges(
        600,
        &[(0, 1), (1, 2), (2, 3), (3, 4), (200, 201), (201, 202), (400, 401)],
    );
    let sources = vec![0u32, 200, 400, 599]; // 599 is fully isolated
    let opts = BfsOptions { threads: 4, record_parents: true, ..BfsOptions::default() };
    for &algo in &PARALLEL {
        let b = run_batch(algo, &g, &sources, &opts);
        check_batch(&g, &b, &sources, &format!("components/{algo}"));
        // Explicit cross-bleed probes.
        assert_eq!(b.queries[0].levels[200], UNVISITED, "{algo}: bleed 0→200");
        assert_eq!(b.queries[1].levels[0], UNVISITED, "{algo}: bleed 200→0");
        assert_eq!(b.queries[3].reached(), 1, "{algo}: isolated source reached >1");
    }
}

/// Option grid riding along: segment policies and phase-2 stealing must
/// not perturb batched results (owner-array dedup is excluded — it is
/// incompatible with batching by design and asserted in `new_batch`).
#[test]
fn batch_option_grid() {
    let g = gen::barabasi_albert(700, 3, 61);
    let sources = pick_sources(g.num_vertices(), 17, 37, false);
    let runner = BfsRunner::new(4);
    for segment in [SegmentPolicy::Fixed(8), SegmentPolicy::Adaptive { div: 8, max: 1024 }] {
        for phase2_steal in [false, true] {
            let opts = BfsOptions {
                threads: 4,
                segment,
                phase2_steal,
                hub_threshold: Some(8),
                record_parents: true,
                ..BfsOptions::default()
            };
            for algo in [Algorithm::Bfscl, Algorithm::Bfswsl, Algorithm::EdgeCl] {
                let b = runner.run_batch(algo, &g, &sources, &opts);
                check_batch(
                    &g,
                    &b,
                    &sources,
                    &format!("grid/{algo}/{segment:?}/p2s={phase2_steal}"),
                );
            }
        }
    }
}

/// Owner-array dedup is rejected for batches (the owner word is
/// per-vertex, not per-query; silently accepting it would drop queries).
#[test]
#[should_panic(expected = "incompatible with batched")]
fn owner_array_dedup_rejected() {
    let g = gen::path(50);
    let opts = BfsOptions { threads: 2, dedup: DedupMode::OwnerArray, ..BfsOptions::default() };
    let _ = run_batch(Algorithm::Bfswl, &g, &[0, 5], &opts);
}
