//! End-to-end acceptance tests for the live-telemetry layer
//! (DESIGN.md §13): the engine's always-on metrics registry must
//! conserve against both `EngineStats` and a client counting its own
//! responses, the per-query span log must reconstruct every submitted
//! query's lifecycle exactly (including queries answered by coalesced
//! batches and queries shed at the door), the registry's latency
//! histograms must agree with an external clock-side histogram, and a
//! run without an installed telemetry handle must leave a registry
//! untouched.
//!
//! Everything here is feature-free: the span log and registry are
//! always on. `trace` builds additionally check the `SPAN` flight
//! mirrors in the scheduler's recorder ring.

use obfs_core::{Algorithm, BfsOptions};
use obfs_engine::{Engine, EngineConfig, Query, QueryStatus, SubmitError};
use obfs_graph::gen;
use obfs_telemetry::span::{self, stage};
use std::collections::BTreeMap;
use std::sync::Arc;

fn test_graph(seed: u64) -> obfs_graph::CsrGraph {
    gen::erdos_renyi(2_000, 16_000, seed)
}

/// Drive a mixed workload and return what the client itself saw:
/// terminal-status counts by key, plus the ids of shed submits.
struct ClientView {
    terminals: BTreeMap<&'static str, u64>,
    responses: Vec<(u64, QueryStatus)>,
    shed: u64,
    lat_us: obfs_util::LogHistogram,
}

fn drive(engine: &Engine, queries: usize, burst: usize) -> ClientView {
    let mut view = ClientView {
        terminals: BTreeMap::new(),
        responses: Vec::new(),
        shed: 0,
        lat_us: obfs_util::LogHistogram::new(),
    };
    let mut submitted = 0usize;
    let mut src = 0u32;
    while submitted < queries {
        let want = burst.min(queries - submitted);
        let mut handles = Vec::with_capacity(want);
        for _ in 0..want {
            src = (src + 37) % 2_000;
            match engine.submit(Query::new(Algorithm::Bfswsl, src)) {
                Ok(h) => handles.push(h),
                Err(SubmitError::Overloaded) => view.shed += 1,
                Err(e) => panic!("unexpected submit error: {e}"),
            }
            submitted += 1;
        }
        for h in handles {
            let resp = h.wait();
            view.lat_us.record(resp.total_ns / 1_000);
            let key = match resp.status {
                QueryStatus::Complete => "completed",
                QueryStatus::Degraded => "degraded",
                QueryStatus::Cancelled => "cancelled",
                QueryStatus::DeadlineExceeded => "deadline_exceeded",
                QueryStatus::Failed(_) => "failed",
            };
            *view.terminals.entry(key).or_insert(0) += 1;
            view.responses.push((resp.id, resp.status));
        }
    }
    view
}

/// Conservation across all three ledgers: the registry's counters,
/// the `EngineStats` read-through view, and the client's own response
/// counts must agree exactly at quiescence — plus the registry's
/// latency percentiles must sit within one log-histogram bucket of a
/// histogram the client built from the same responses.
#[test]
fn registry_enginestats_and_client_counts_conserve() {
    let engine = Engine::new(
        Arc::new(test_graph(11)),
        EngineConfig { threads: 2, capacity: 4, ..Default::default() },
    );
    // Burst 8 over capacity 4: roughly half of each burst is shed.
    let view = drive(&engine, 48, 8);
    let st = engine.stats();
    let snap = engine.telemetry().registry().snapshot();
    let c = |name: &str| snap.counter(name).unwrap_or_else(|| panic!("{name} missing"));

    // Ledger 1 ≡ ledger 2: registry vs EngineStats, key by key.
    assert_eq!(c("obfs_engine_queries_submitted_total"), st.submitted);
    assert_eq!(c("obfs_engine_queries_shed_total"), st.shed);
    assert_eq!(c("obfs_engine_queries_completed_total"), st.completed);
    assert_eq!(c("obfs_engine_queries_degraded_total"), st.degraded);
    assert_eq!(c("obfs_engine_queries_cancelled_total"), st.cancelled);
    assert_eq!(c("obfs_engine_queries_deadline_exceeded_total"), st.deadline_exceeded);
    assert_eq!(c("obfs_engine_queries_failed_total"), st.failed);
    assert_eq!(c("obfs_engine_retries_total"), st.retries);
    assert_eq!(c("obfs_engine_batched_runs_total"), st.batched_runs);
    assert_eq!(c("obfs_engine_queries_coalesced_total"), st.queries_coalesced);

    // Ledger 2 ≡ ledger 3: EngineStats vs the client's counts.
    let t = |k: &str| view.terminals.get(k).copied().unwrap_or(0);
    assert_eq!(st.shed, view.shed);
    assert_eq!(st.completed, t("completed"));
    assert_eq!(st.degraded, t("degraded"));
    assert_eq!(st.cancelled, t("cancelled"));
    assert_eq!(st.deadline_exceeded, t("deadline_exceeded"));
    assert_eq!(st.failed, t("failed"));
    assert_eq!(st.submitted, view.responses.len() as u64);
    assert_eq!(st.submitted + st.shed, 48, "every attempt admitted or shed");

    // At quiescence every admitted query reached exactly one terminal.
    let terminal_sum =
        st.completed + st.degraded + st.cancelled + st.deadline_exceeded + st.failed;
    assert_eq!(terminal_sum, st.submitted);
    let in_flight = snap.gauge("obfs_engine_in_flight").expect("in_flight gauge");
    assert_eq!(in_flight, 0, "quiescent engine has nothing in flight");

    // Latency agreement: both histograms saw the same total_ns stream,
    // so their percentiles differ by at most one bucket (1/8 relative).
    let (p50, p99) = match snap.get("obfs_engine_total_us") {
        Some(obfs_telemetry::registry::MetricValue::Summary { total, .. }) => {
            (total.percentile(0.50), total.percentile(0.99))
        }
        other => panic!("obfs_engine_total_us missing: {other:?}"),
    };
    for (mine, reg) in
        [(view.lat_us.percentile(0.50), p50), (view.lat_us.percentile(0.99), p99)]
    {
        let (a, b) = (mine as f64, reg as f64);
        assert!(
            (a - b).abs() <= a.max(b) / 8.0 + 1.0,
            "percentiles disagree beyond one bucket: client {mine}us vs registry {reg}us"
        );
    }

    // The driver-level run telemetry flowed through the same registry.
    let traversals = c("obfs_run_traversals_total");
    assert!(traversals >= 1, "at least one traversal ran");
    assert!(
        traversals <= st.submitted,
        "coalescing can only shrink the traversal count below the query count"
    );
    assert!(c("obfs_run_levels_total") >= traversals, "every traversal ran >= 1 level");
    assert!(c("obfs_run_edges_scanned_total") > 0, "workers flushed edge counts");

    // The exposition endpoint's text form parses and carries the same
    // counter values (std scraper validation without a socket).
    let text = snap.render_text();
    let parsed = obfs_telemetry::parse_exposition(&text).expect("well-formed exposition");
    let sample = |n: &str| {
        obfs_telemetry::sample(&parsed, n).unwrap_or_else(|| panic!("{n} missing")) as u64
    };
    assert_eq!(sample("obfs_engine_queries_submitted_total"), st.submitted);
    assert_eq!(sample("obfs_engine_queries_shed_total"), st.shed);
    assert_eq!(sample("obfs_run_traversals_total"), traversals);
}

/// The span log must reconstruct every query's lifecycle exactly:
/// every submit attempt (admitted or shed) appears exactly once, every
/// admitted query's transitions obey the lifecycle state machine and
/// end in the terminal the client observed, coalesced members point at
/// a live leader, and the coalesced count agrees with `EngineStats`.
#[test]
fn span_log_reconstructs_every_query_lifecycle() {
    let engine = Engine::new(
        Arc::new(test_graph(12)),
        // One worker thread and a deep queue: queries pile up behind
        // the running traversal, which is exactly what makes the
        // scheduler coalesce them into batches.
        EngineConfig { threads: 1, capacity: 16, max_batch: 8, ..Default::default() },
    );
    let view = drive(&engine, 64, 16);
    let st = engine.stats();
    let tele = Arc::clone(engine.telemetry());
    drop(engine); // lifecycles must survive engine shutdown

    let dump = tele.spans();
    assert_eq!(dump.dropped, 0, "default capacity must hold this workload");
    let lifecycles = span::validate(&dump.events)
        .unwrap_or_else(|e| panic!("span grammar violated: {e}"));

    // Every submit attempt consumed an id and left a lifecycle: the
    // admitted ones, and the shed ones (terminal SHED).
    assert_eq!(lifecycles.len() as u64, st.submitted + st.shed);
    let shed_count =
        lifecycles.values().filter(|l| l.terminal == stage::SHED).count() as u64;
    assert_eq!(shed_count, st.shed);

    // Each client-observed response maps to the identical terminal.
    for (id, status) in &view.responses {
        let lc = lifecycles
            .get(id)
            .unwrap_or_else(|| panic!("query {id} missing from the span log"));
        let want = match status {
            QueryStatus::Complete => stage::COMPLETE,
            QueryStatus::Degraded => stage::DEGRADED,
            QueryStatus::Cancelled => stage::CANCELLED,
            QueryStatus::DeadlineExceeded => stage::DEADLINE_EXCEEDED,
            QueryStatus::Failed(_) => stage::FAILED,
        };
        assert_eq!(
            lc.terminal,
            want,
            "query {id}: span log says {} but the client saw {status:?}",
            stage::name(lc.terminal)
        );
    }

    // Coalesced members reconstruct exactly: their count matches the
    // engine's ledger, and each one's leader ran a batch whose size
    // covers its members.
    let members: Vec<_> =
        lifecycles.values().filter(|l| l.coalesced_into.is_some()).collect();
    assert!(st.batched_runs > 0, "the 1-thread deep-queue workload must coalesce");
    let mut by_leader: BTreeMap<u64, u64> = BTreeMap::new();
    for m in &members {
        *by_leader.entry(m.coalesced_into.unwrap()).or_insert(0) += 1;
    }
    // queries_coalesced counts members plus their leaders.
    let coalesced_total = members.len() as u64 + by_leader.len() as u64;
    assert_eq!(coalesced_total, st.queries_coalesced);
    for (leader, member_count) in &by_leader {
        let lc = &lifecycles[leader];
        let k = lc.batch_size.expect("a batch leader records its batch size");
        assert_eq!(
            k,
            member_count + 1,
            "leader {leader}: RUN_START batch size must cover leader + members"
        );
    }

    // `trace` builds: the scheduler ring mirrors every span transition
    // as a SPAN flight event with an identical (id, stage) stream.
    #[cfg(feature = "trace")]
    {
        let ring = tele.scheduler_trace().expect("scheduler parks its ring on shutdown");
        let mirrored: Vec<(u64, u64)> = ring
            .events
            .iter()
            .filter(|e| e.kind == obfs_sync::flight::kind::SPAN)
            .map(|e| (e.a, span::decode_flight(e.b).0))
            .collect();
        let recorded: Vec<(u64, u64)> =
            dump.events.iter().map(|e| (e.id, e.stage)).collect();
        // The ring holds only the scheduler thread's transitions
        // (SUBMITTED/SHED mirrors land in the submitting thread, which
        // has no ring), and it is bounded — so the mirrors must form an
        // ordered subsequence of the authoritative span log.
        assert!(!mirrored.is_empty(), "SPAN events must land in the scheduler ring");
        let mut rest = recorded.iter();
        for m in &mirrored {
            assert!(
                rest.any(|r| r == m),
                "SPAN mirror {:?}/{} missing from (or out of order with) the span log",
                m.0,
                stage::name(m.1)
            );
        }
        // And the scheduler-side stages are all there: every pop and
        // every terminal the ring retained.
        assert!(mirrored.iter().any(|(_, s)| *s == stage::POPPED));
        assert!(mirrored.iter().any(|(_, s)| span::stage::is_terminal(*s)));
    }
}

/// Zero cost when off: a traversal whose options carry no telemetry
/// handle must leave an unrelated registry completely untouched, and
/// the worker-side hook must stay inert.
#[test]
fn run_without_telemetry_leaves_a_registry_untouched() {
    let (clock, _hand) = obfs_core::Clock::manual();
    let reg = obfs_telemetry::MetricsRegistry::new(clock);
    let run = obfs_telemetry::RunTelemetry::register(&reg);

    let g = test_graph(13);
    let opts = BfsOptions { threads: 2, ..Default::default() };
    assert!(opts.telemetry.is_none(), "telemetry is opt-in");
    let r = obfs_core::run_bfs(Algorithm::Bfswsl, &g, 0, &opts);
    assert!(r.stats.totals.edges_scanned > 0);

    assert_eq!(run.traversals.value(), 0);
    assert_eq!(run.edges.value(), 0);
    assert_eq!(run.level.value(), 0);
    assert!(!obfs_telemetry::worker::is_active());

    // And with a handle installed, the same traversal shows up.
    let opts = BfsOptions { threads: 2, telemetry: Some(Arc::clone(&run)), ..Default::default() };
    let r2 = obfs_core::run_bfs(Algorithm::Bfswsl, &g, 0, &opts);
    assert_eq!(run.traversals.value(), 1);
    assert_eq!(
        run.edges.value(),
        r2.stats.totals.edges_scanned,
        "per-level worker flushes must sum to the run's exact edge total"
    );
    assert_eq!(run.levels.value(), u64::from(r2.stats.levels));
}
