//! Golden-schema tests for the machine-readable benchmark pipeline:
//! the hand-rolled JSON round-trips, live reports built from real runs
//! satisfy the conservation invariants, the committed `BENCH_*.json`
//! artifact stays parseable, and the chrome://tracing exporter keeps
//! its shape. `obfs_bench::json::validate_report` is the single source
//! of truth shared with the CI smoke check.

use obfs::prelude::*;
use obfs_bench::harness::{measure_with_series, pick_sources};
use obfs_bench::json::{self, Json};
use obfs_bench::{BenchArgs, BenchReport, Contender, ContenderPool};
use obfs_core::flight::{kind, FlightEvent, FlightRecording, RingDump};

fn small_args() -> BenchArgs {
    BenchArgs {
        divisor: 4096,
        threads: 4,
        sources: 2,
        seed: 7,
        ..BenchArgs::default()
    }
}

/// Build a report exactly the way the bench bins do, from real runs, and
/// check it satisfies the schema it will be validated against in CI:
/// required keys present, steal buckets sum to attempts, per-level series
/// counters sum to the collection run's merged totals.
#[test]
fn live_report_round_trips_and_conserves_counters() {
    let args = small_args();
    let g = gen::erdos_renyi(800, 6400, args.seed);
    let sources = pick_sources(&g, args.sources, args.seed);
    let opts = BfsOptions { threads: args.threads, ..BfsOptions::default() };
    let mut pool = ContenderPool::new(args.threads);
    let mut report = BenchReport::new("schema-test", &args);
    for algo in [Algorithm::Bfscl, Algorithm::Bfswl, Algorithm::Bfswsl] {
        let m = measure_with_series(
            &mut pool,
            Contender::Ours(algo),
            &g,
            "er",
            &sources,
            &opts,
        );
        let series = m.series.as_ref().expect("parallel run must produce a series");
        assert!(!series.levels.is_empty());
        report.add_measurement(&m);
    }
    let text = report.render();
    let doc = Json::parse(&text).expect("emitted report must parse");
    json::validate_report(&doc).expect("emitted report must validate");
    // Byte-stable round trip: parse → render → parse gives the same tree.
    assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
}

/// A serial contender carries no per-level series, but its result entry
/// must still validate (series is optional in the schema).
#[test]
fn serial_contender_omits_series_but_validates() {
    let args = small_args();
    let g = gen::binary_tree(511);
    let sources = pick_sources(&g, 1, args.seed);
    let opts = BfsOptions { threads: args.threads, ..BfsOptions::default() };
    let mut pool = ContenderPool::new(args.threads);
    let m = measure_with_series(
        &mut pool,
        Contender::Ours(Algorithm::Serial),
        &g,
        "tree",
        &sources,
        &opts,
    );
    assert!(m.series.is_none(), "serial runs produce no level stats");
    let mut report = BenchReport::new("schema-test-serial", &args);
    report.add_measurement(&m);
    json::validate_report(&Json::parse(&report.render()).unwrap()).unwrap();
}

/// The committed artifact must stay parseable and internally consistent;
/// regenerate with `scripts/bench.sh` (or `table6 --json`) if the schema
/// changes.
#[test]
fn committed_bench_artifact_validates() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_table6.json");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("missing committed artifact {path}: {e}"));
    let doc = Json::parse(&text).expect("committed BENCH_table6.json must parse");
    json::validate_report(&doc).expect("committed BENCH_table6.json must validate");
    assert_eq!(doc.get("bench").and_then(Json::as_str), Some("table6"));
}

/// The chrome://tracing exporter is feature-independent (the event types
/// are always compiled); check its shape on a synthetic recording.
#[test]
fn chrome_trace_exporter_shape() {
    let rec = FlightRecording {
        workers: vec![
            RingDump {
                events: vec![
                    FlightEvent { ts_us: 0, kind: kind::WORKER_BEGIN, level: 0, a: 0, b: 0 },
                    FlightEvent { ts_us: 1, kind: kind::LEVEL_START, level: 0, a: 1, b: 0 },
                    FlightEvent { ts_us: 5, kind: kind::SEGMENT_FETCH, level: 0, a: 0, b: 8 },
                    FlightEvent { ts_us: 9, kind: kind::LEVEL_END, level: 0, a: 0, b: 0 },
                    FlightEvent { ts_us: 12, kind: kind::WORKER_END, level: 0, a: 0, b: 0 },
                ],
                dropped: 0,
            },
            RingDump {
                events: vec![FlightEvent {
                    ts_us: 3,
                    kind: kind::STEAL_SUCCESS,
                    level: 0,
                    a: 0,
                    b: 4,
                }],
                dropped: 2,
            },
        ],
    };
    assert_eq!(rec.total_events(), 6);
    assert_eq!(rec.total_dropped(), 2);
    assert_eq!(rec.count(kind::SEGMENT_FETCH), 1);
    let text = obfs_core::flight::to_chrome_trace(&rec);
    let doc = Json::parse(&text).expect("chrome trace must be valid JSON");
    assert_eq!(doc.get("displayTimeUnit").and_then(Json::as_str), Some("ms"));
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    // 6 recorded events + 1 process_name + per-worker thread_name and
    // ring-dropped counter (2 workers).
    assert_eq!(events.len(), 11);
    // Paired kinds become B/E span events, the rest instants; metadata
    // ('M') labels the process and each worker thread, and a counter
    // ('C') per worker carries the ring-overflow count.
    let phases: Vec<&str> =
        events.iter().map(|e| e.get("ph").and_then(Json::as_str).unwrap()).collect();
    assert_eq!(phases.iter().filter(|p| **p == "B").count(), 2);
    assert_eq!(phases.iter().filter(|p| **p == "E").count(), 2);
    assert_eq!(phases.iter().filter(|p| **p == "i").count(), 2);
    assert_eq!(phases.iter().filter(|p| **p == "M").count(), 3);
    assert_eq!(phases.iter().filter(|p| **p == "C").count(), 2);
    // Worker index becomes the tid (the process_name record has none).
    let tids: Vec<u64> = events
        .iter()
        .filter_map(|e| e.get("tid").and_then(Json::as_u64))
        .collect();
    assert!(tids.contains(&0) && tids.contains(&1));
    // The exporter round-trips exactly through the bundled parser.
    let back = obfs_core::flight::parse_chrome_trace(&text).expect("parse own export");
    assert_eq!(back, rec);
}
