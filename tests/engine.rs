//! End-to-end acceptance tests for the resilient query engine
//! (DESIGN.md §10): cooperative cancellation that breaks injected
//! worker stalls, deterministic deadlines on a manual clock with a
//! consistent partial-state contract, bounded admission that sheds
//! overload instead of queueing it, pool auto-rebuild after worker
//! panics, and a persistent-engine soak proving sequential queries
//! leak no thread-local state.
//!
//! The stall/panic tests need the `chaos` feature:
//!
//! ```sh
//! cargo test --test engine --features chaos,trace
//! ```

use obfs_core::serial::serial_bfs;
use obfs_core::{Algorithm, BfsOptions, CancelToken, Clock, Outcome};
use obfs_engine::{Engine, EngineConfig, Query, QueryStatus};
use obfs_graph::gen;
use std::sync::Arc;
use std::time::Duration;

fn test_graph(seed: u64) -> obfs_graph::CsrGraph {
    gen::erdos_renyi(2_000, 16_000, seed)
}

/// A deadline that already passed on a frozen manual clock aborts the
/// run deterministically: the result is tagged `DeadlineExceeded` +
/// partial, and the partial state honors the contract — every labeled
/// vertex carries its exact BFS distance and every level the run
/// consumed is completely labeled.
#[test]
fn expired_deadline_yields_consistent_partial_state() {
    let g = test_graph(3);
    let reference = serial_bfs(&g, 0);
    let (clock, hand) = Clock::manual();
    hand.set_ns(5_000_000);
    for algo in [Algorithm::Bfscl, Algorithm::Bfswl, Algorithm::Bfswsl, Algorithm::EdgeCl] {
        let token = CancelToken::with_deadline_at(&clock, 5_000_000); // now
        let opts = BfsOptions {
            threads: 3,
            clock: clock.clone(),
            cancel: Some(token),
            ..Default::default()
        };
        let r = obfs_core::run_bfs(algo, &g, 0, &opts);
        assert_eq!(r.stats.outcome, Outcome::DeadlineExceeded, "{algo}");
        assert!(r.stats.partial, "{algo}: aborted run must be tagged partial");
        obfs_core::validate::check_partial(&g, 0, &r, &reference.levels)
            .unwrap_or_else(|e| panic!("{algo}: partial-state contract broken: {e}"));
    }
}

/// Same contract through the engine: a query whose deadline expired
/// while queued resolves at pop time without ever touching the pool.
#[test]
fn queued_query_past_deadline_never_runs() {
    let (clock, hand) = Clock::manual();
    hand.set_ns(1_000_000);
    let e = Engine::new(
        Arc::new(test_graph(4)),
        EngineConfig { threads: 2, clock, ..Default::default() },
    );
    let resp =
        e.submit(Query::new(Algorithm::Bfscl, 0).with_deadline(Duration::ZERO)).unwrap().wait();
    assert_eq!(resp.status, QueryStatus::DeadlineExceeded);
    assert!(resp.result.is_none(), "expired before running: no result");
    assert_eq!(e.stats().deadline_exceeded, 1);
}

/// Cancellation must break a worker that is *stalled inside a dispatch
/// quantum*, not just one that reaches the next level barrier: the
/// injected stall spins `u32::MAX` times — effectively forever — and
/// only the cancel probe can release it. If cancellation did not reach
/// stalled workers, this test would hang rather than fail.
#[cfg(feature = "chaos")]
#[test]
fn cancellation_breaks_an_injected_worker_stall() {
    use obfs_sync::ChaosConfig;
    let g = test_graph(5);
    let reference = serial_bfs(&g, 0);
    let clock = Clock::wall();
    let token = CancelToken::new(&clock);
    let opts = BfsOptions {
        threads: 4,
        clock,
        cancel: Some(token.clone()),
        chaos: Some(ChaosConfig::stall(7, 25, u32::MAX)),
        ..Default::default()
    };
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            token.cancel();
        })
    };
    let r = obfs_core::run_bfs(Algorithm::Bfscl, &g, 0, &opts);
    canceller.join().unwrap();
    // The run returned at all: the stall was broken. The workers then
    // quiesce at the next barrier, so the abort is leader-published and
    // the partial state is consistent.
    assert_eq!(r.stats.outcome, Outcome::Cancelled);
    assert!(r.stats.partial);
    obfs_core::validate::check_partial(&g, 0, &r, &reference.levels).unwrap();
}

/// Bounded admission under a stall-blocked pool: with capacity 1 held
/// by a query stalled mid-run, the next submit is shed immediately
/// (never queued), and cancelling the blocker frees the slot.
#[cfg(feature = "chaos")]
#[test]
fn overload_is_shed_while_a_stalled_query_holds_the_slot() {
    use obfs_engine::SubmitError;
    use obfs_sync::ChaosConfig;
    let e = Engine::new(
        Arc::new(test_graph(6)),
        EngineConfig { threads: 2, capacity: 1, ..Default::default() },
    );
    let mut blocker = Query::new(Algorithm::Bfscl, 0);
    blocker.chaos = Some(ChaosConfig::stall(9, 25, u32::MAX));
    let h1 = e.submit(blocker).unwrap();
    // The slot is taken from submit on, so this is deterministic.
    match e.submit(Query::new(Algorithm::Bfscl, 0)) {
        Err(SubmitError::Overloaded) => {}
        Err(other) => panic!("expected Overloaded, got {other}"),
        Ok(_) => panic!("capacity-1 engine with a held slot must shed"),
    }
    assert_eq!(e.stats().shed, 1);
    h1.cancel();
    let resp = h1.wait();
    assert_eq!(resp.status, QueryStatus::Cancelled);
    // Slot freed: the engine accepts and completes a clean query.
    let resp = e.submit(Query::new(Algorithm::Bfswsl, 1)).unwrap().wait();
    assert_eq!(resp.status, QueryStatus::Complete);
}

/// A worker panic mid-query poisons the pool; the scheduler's
/// `PoolManager` must rebuild it so the *next* query succeeds, and the
/// rebuild must be surfaced in `EngineStats::pool_rebuilds`.
#[cfg(feature = "chaos")]
#[test]
fn worker_panic_is_followed_by_a_successful_query_on_a_rebuilt_pool() {
    use obfs_sync::ChaosConfig;
    let e = Engine::new(
        Arc::new(test_graph(7)),
        EngineConfig { threads: 3, max_retries: 0, ..Default::default() },
    );
    let mut doomed = Query::new(Algorithm::Bfscl, 0);
    doomed.chaos = Some(ChaosConfig::panic_at(11, 40));
    let resp = e.submit(doomed).unwrap().wait();
    assert!(
        matches!(resp.status, QueryStatus::Failed(ref m) if m.contains("panic")),
        "{:?}",
        resp.status
    );
    let resp = e.submit(Query::new(Algorithm::Bfscl, 0)).unwrap().wait();
    assert_eq!(resp.status, QueryStatus::Complete, "engine must recover after a panic");
    let st = e.stats();
    assert_eq!((st.failed, st.completed), (1, 1));
    assert!(st.pool_rebuilds >= 1, "the poisoned pool must have been replaced");
}

/// Thread-local state (chaos plans, flight rings, metrics sinks, cancel
/// probes) must be provably uninstalled between queries sharing one
/// pool: after a mix of complete and cancelled runs — with every
/// feature-gated collector armed — a bare closure on the same workers
/// sees no leftover TLS installations.
#[test]
fn tls_state_is_uninstalled_between_queries_on_a_shared_pool() {
    let g = test_graph(8);
    let pool = obfs_runtime::LevelPool::new(3);
    let clock = Clock::wall();
    for round in 0..4u64 {
        let token = CancelToken::new(&clock);
        #[allow(unused_mut)]
        let mut opts = BfsOptions {
            threads: 3,
            clock: clock.clone(),
            cancel: Some(token.clone()),
            collect_histograms: true,
            ..Default::default()
        };
        #[cfg(feature = "chaos")]
        {
            // A bounded stall: exercises the probe path, then finishes.
            opts.chaos = Some(obfs_sync::ChaosConfig::stall(round, 30, 200));
        }
        #[cfg(feature = "trace")]
        {
            opts.flight_recorder = Some(obfs_core::flight::DEFAULT_FLIGHT_CAPACITY);
        }
        if round % 2 == 1 {
            token.cancel(); // pre-cancelled: quiesces after one level
        }
        let r = obfs_core::driver::run_on_pool(Algorithm::Bfswsl, &g, 0, &opts, &pool);
        if round % 2 == 1 {
            assert_eq!(r.stats.outcome, Outcome::Cancelled);
        }
        pool.run(|_| {
            assert!(!obfs_sync::chaos::is_active(), "chaos plan leaked");
            assert!(!obfs_sync::flight::is_active(), "flight ring leaked");
            assert!(!obfs_sync::metrics::is_active(), "metrics sink leaked");
            assert!(!obfs_sync::cancel::probe_installed(), "cancel probe leaked");
            assert!(!obfs_telemetry::worker::is_active(), "telemetry hook leaked");
        })
        .unwrap();
    }
}

/// One soak round on a persistent engine: a burst of mixed-algorithm
/// queries, one of them cancelled mid-flight, all verified against the
/// serial reference (full or partial, per status).
fn soak_round(e: &Engine, reference: &[u32], seed: u64) {
    let algos =
        [Algorithm::Bfscl, Algorithm::Bfswl, Algorithm::Bfswsl, Algorithm::EdgeCl];
    let mut handles = Vec::new();
    for (i, algo) in algos.iter().enumerate() {
        let h = e.submit(Query::new(*algo, 0)).expect("soak stays under capacity");
        if (seed as usize + i).is_multiple_of(4) {
            h.cancel();
        }
        handles.push(h);
    }
    for h in handles {
        let resp = h.wait();
        match resp.status {
            QueryStatus::Complete | QueryStatus::Degraded => {
                let r = resp.result.unwrap();
                assert_eq!(r.levels, reference, "complete run must match serial");
            }
            QueryStatus::Cancelled => {
                // Cancelled before running → no result; mid-run → the
                // partial state must honor the contract.
                if let Some(r) = &resp.result {
                    let g = e.graph();
                    obfs_core::validate::check_partial(g, 0, r, reference).unwrap();
                }
            }
            other => panic!("unexpected status in soak: {other:?}"),
        }
    }
}

/// Fast slice that always runs: keeps the engine soak harness tested.
#[test]
fn engine_soak_smoke() {
    let g = test_graph(9);
    let reference = serial_bfs(&g, 0).levels;
    let e = Engine::new(
        Arc::new(g),
        EngineConfig { threads: 3, capacity: 8, ..Default::default() },
    );
    for seed in 0..3 {
        soak_round(&e, &reference, seed);
    }
    let st = e.stats();
    assert_eq!(
        st.completed + st.degraded + st.cancelled + st.deadline_exceeded + st.failed,
        st.submitted,
        "every admitted query must reach exactly one terminal status: {st:?}"
    );
    assert_eq!(e.in_flight(), 0);
}

/// The real soak: many sequential rounds against ONE engine (60 by
/// default; override with `OBFS_SOAK_ROUNDS`). Proves the persistent
/// pool neither leaks TLS state nor drifts: round N behaves like round
/// zero.
#[test]
#[ignore = "long-running; use cargo test --release --test engine -- --ignored"]
fn engine_soak_full() {
    let rounds: u64 = std::env::var("OBFS_SOAK_ROUNDS")
        .ok()
        .map(|v| v.parse().expect("OBFS_SOAK_ROUNDS must be an integer"))
        .unwrap_or(60);
    let g = test_graph(10);
    let reference = serial_bfs(&g, 0).levels;
    let e = Engine::new(
        Arc::new(g),
        EngineConfig { threads: 4, capacity: 8, ..Default::default() },
    );
    for seed in 0..rounds {
        soak_round(&e, &reference, seed);
        if seed % 10 == 0 {
            eprintln!("engine soak round {seed}/{rounds}");
        }
    }
    let st = e.stats();
    assert_eq!(
        st.completed + st.degraded + st.cancelled + st.deadline_exceeded + st.failed,
        st.submitted
    );
    assert_eq!(e.in_flight(), 0);
}

/// The per-query partial-state contract on a batched run: a deadline
/// that expires mid-traversal aborts the *shared* level loop at one
/// barrier, and every query's column must then independently satisfy
/// `check_partial` — labeled vertices carry exact distances, and every
/// union-frontier level the run consumed is completely labeled for every
/// member query.
#[test]
fn expired_deadline_batch_yields_consistent_per_query_partial_state() {
    let g = test_graph(13);
    let sources: Vec<u32> = (0..17).map(|q| q * 83 + 1).collect();
    let (clock, hand) = Clock::manual();
    hand.set_ns(5_000_000);
    for algo in [Algorithm::Bfscl, Algorithm::Bfswl, Algorithm::Bfswsl, Algorithm::EdgeCl] {
        let token = CancelToken::with_deadline_at(&clock, 5_000_000); // now
        let opts = BfsOptions {
            threads: 3,
            clock: clock.clone(),
            cancel: Some(token),
            ..Default::default()
        };
        let b = obfs_core::run_batch(algo, &g, &sources, &opts);
        assert_eq!(b.stats.outcome, Outcome::DeadlineExceeded, "{algo}");
        assert!(b.stats.partial, "{algo}: aborted batch must be tagged partial");
        for (q, qr) in b.queries.iter().enumerate() {
            let reference = serial_bfs(&g, sources[q]);
            let r = qr.as_bfs_result(&b.stats);
            obfs_core::validate::check_partial(&g, sources[q], &r, &reference.levels)
                .unwrap_or_else(|e| {
                    panic!("{algo} query {q}: per-query partial contract broken: {e}")
                });
        }
    }
}

/// Cancellation reaches a worker stalled inside a batched dispatch
/// quantum, and after the leader publishes the abort every query's
/// partial column is still contract-clean.
#[cfg(feature = "chaos")]
#[test]
fn cancellation_breaks_a_stalled_batch_run() {
    use obfs_sync::ChaosConfig;
    let g = test_graph(14);
    let sources: Vec<u32> = (0..64).map(|q| q * 31 + 1).collect();
    let clock = Clock::wall();
    let token = CancelToken::new(&clock);
    let opts = BfsOptions {
        threads: 4,
        clock,
        cancel: Some(token.clone()),
        chaos: Some(ChaosConfig::stall(15, 25, u32::MAX)),
        ..Default::default()
    };
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            token.cancel();
        })
    };
    let b = obfs_core::run_batch(Algorithm::Bfscl, &g, &sources, &opts);
    canceller.join().unwrap();
    assert_eq!(b.stats.outcome, Outcome::Cancelled);
    assert!(b.stats.partial);
    for (q, qr) in b.queries.iter().enumerate() {
        let reference = serial_bfs(&g, sources[q]);
        let r = qr.as_bfs_result(&b.stats);
        obfs_core::validate::check_partial(&g, sources[q], &r, &reference.levels)
            .unwrap_or_else(|e| panic!("query {q}: partial contract broken: {e}"));
    }
}
