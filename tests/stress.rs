//! Stress and adversarial-schedule tests: oversubscription, repeated
//! runs, tiny segments (maximal race rates), deep graphs (many level
//! barriers), and hot hubs. These are the tests that would catch a
//! lost-vertex bug in the optimistic protocols if one existed.

use obfs::prelude::*;
use obfs_core::serial::serial_bfs;

/// Heavy oversubscription: 16 threads on (typically) far fewer cores —
/// forced preemption right in the middle of racy updates.
#[test]
fn oversubscribed_threads() {
    let g = gen::erdos_renyi(3000, 24_000, 3);
    let reference = serial_bfs(&g, 0);
    let opts = BfsOptions { threads: 16, ..BfsOptions::default() };
    for algo in [Algorithm::Bfscl, Algorithm::Bfsdl, Algorithm::Bfswl, Algorithm::Bfswsl] {
        let r = run_bfs(algo, &g, 0, &opts);
        assert_eq!(r.levels, reference.levels, "{algo} under oversubscription");
    }
}

/// Segment length 1 maximizes dispatcher contention: every vertex is its
/// own racy fetch.
#[test]
fn maximal_contention_segments() {
    let g = gen::barabasi_albert(2000, 4, 9);
    let reference = serial_bfs(&g, 0);
    let opts = BfsOptions {
        threads: 8,
        segment: SegmentPolicy::Fixed(1),
        steal_min: 2,
        ..BfsOptions::default()
    };
    for algo in [Algorithm::Bfscl, Algorithm::Bfsdl, Algorithm::EdgeCl] {
        for rep in 0..5 {
            let r = run_bfs(algo, &g, 0, &opts);
            assert_eq!(r.levels, reference.levels, "{algo} rep {rep}");
        }
    }
}

/// Many repetitions of the racy work-stealing variant: each run takes a
/// different interleaving; all must agree.
#[test]
fn repeated_runs_always_agree() {
    let g = gen::rmat(11, 8, gen::RmatParams::default(), 5);
    let src = (0..g.num_vertices() as u32).find(|&v| g.degree(v) > 0).unwrap();
    let reference = serial_bfs(&g, src);
    let runner = obfs::core::BfsRunner::new(6);
    for seed in 0..20u64 {
        let opts = BfsOptions { threads: 6, seed, ..BfsOptions::default() };
        let r = runner.run(Algorithm::Bfswsl, &g, src, &opts);
        assert_eq!(r.levels, reference.levels, "seed {seed}");
    }
}

/// A 2000-level path: stresses the level barrier machinery (6000+
/// barrier rounds) and empty-frontier handling.
#[test]
fn very_deep_graph() {
    let g = gen::path(2000);
    let reference = serial_bfs(&g, 0);
    let opts = BfsOptions { threads: 4, ..BfsOptions::default() };
    for algo in [Algorithm::Bfscl, Algorithm::Bfswl] {
        let r = run_bfs(algo, &g, 0, &opts);
        assert_eq!(r.levels, reference.levels, "{algo} on the deep path");
        assert_eq!(r.stats.levels, 2000, "{algo} level count");
    }
}

/// One extreme hub with 20k leaves: the scale-free hub split must cover
/// every leaf exactly, and all threads hammer the same adjacency list.
#[test]
fn extreme_hub() {
    let g = gen::star(20_000);
    let reference = serial_bfs(&g, 17); // from a leaf: leaf -> hub -> all
    let opts = BfsOptions { threads: 8, hub_threshold: Some(100), ..BfsOptions::default() };
    for algo in [Algorithm::Bfsws, Algorithm::Bfswsl] {
        let r = run_bfs(algo, &g, 17, &opts);
        assert_eq!(r.levels, reference.levels, "{algo}");
        assert_eq!(r.reached(), 20_000);
    }
}

/// Dense graph = maximal duplicate pressure (every vertex has ~n
/// parents racing to discover it).
#[test]
fn dense_duplicate_pressure() {
    let g = gen::complete(300);
    let reference = serial_bfs(&g, 0);
    let opts = BfsOptions { threads: 8, ..BfsOptions::default() };
    for algo in Algorithm::ALL {
        let r = run_bfs(algo, &g, 0, &opts);
        assert_eq!(r.levels, reference.levels, "{algo} on K300");
    }
    // With owner-array dedup the duplicate explorations must vanish for
    // the centralized lock-free variant.
    let opts_dedup = BfsOptions {
        threads: 8,
        dedup: DedupMode::OwnerArray,
        ..BfsOptions::default()
    };
    let r = run_bfs(Algorithm::Bfscl, &g, 0, &opts_dedup);
    assert_eq!(r.levels, reference.levels);
}

/// Paper-graph stand-ins at test scale: the full pipeline (suite
/// generator -> parallel BFS -> validation).
#[test]
fn paper_suite_end_to_end() {
    use obfs_graph::gen::suite::ALL;
    let opts = BfsOptions { threads: 4, ..BfsOptions::default() };
    for kind in ALL {
        let g = kind.generate(2048, 7);
        let src = (0..g.num_vertices() as u32).find(|&v| g.degree(v) > 0).unwrap();
        let reference = serial_bfs(&g, src);
        for algo in [Algorithm::Bfscl, Algorithm::Bfswsl] {
            let r = run_bfs(algo, &g, src, &opts);
            assert_eq!(r.levels, reference.levels, "{algo} on {}", kind.name());
        }
    }
}

/// The steal budget must not leave work behind: more threads than
/// queues-with-work plus immediate steal exhaustion.
#[test]
fn many_threads_tiny_graph() {
    let g = gen::path(10);
    let reference = serial_bfs(&g, 0);
    let opts = BfsOptions { threads: 12, ..BfsOptions::default() };
    for algo in Algorithm::ALL {
        let r = run_bfs(algo, &g, 0, &opts);
        assert_eq!(r.levels, reference.levels, "{algo} with 12 threads on 10 vertices");
    }
}

/// Decentralized pools under stress: every pool configuration on a
/// hub-heavy graph.
#[test]
fn decentralized_pool_grid() {
    let g = gen::barabasi_albert(1500, 3, 31);
    let reference = serial_bfs(&g, 0);
    for pools in 1..=8 {
        let opts = BfsOptions { threads: 8, pools, ..BfsOptions::default() };
        let r = run_bfs(Algorithm::Bfsdl, &g, 0, &opts);
        assert_eq!(r.levels, reference.levels, "pools={pools}");
    }
}
