//! Long-running soak tests for the optimistic protocols. Ignored by
//! default; run with
//!
//! ```sh
//! cargo test --release --test soak -- --ignored
//! ```
//!
//! These drive hundreds of randomized (graph, algorithm, option, seed)
//! combinations to shake out low-probability race outcomes that the fast
//! suites would only hit occasionally. A short smoke slice runs in the
//! normal suite so the harness itself stays exercised.

use obfs::prelude::*;
use obfs_core::serial::serial_bfs;
use obfs_util::Xoshiro256StarStar;

/// One randomized round: pick a graph family, options and sources from
/// `seed`; check every parallel algorithm against serial.
fn round(seed: u64, runner_cache: &mut Vec<(usize, obfs::core::BfsRunner)>) {
    let mut rng = Xoshiro256StarStar::new(seed);
    let g = match rng.below(5) {
        0 => gen::erdos_renyi(200 + rng.below_usize(2000), 4000, seed),
        1 => gen::barabasi_albert(200 + rng.below_usize(1500), 1 + rng.below_usize(4), seed),
        2 => gen::rmat(9 + rng.below(3) as u32, 4 + rng.below_usize(8), gen::RmatParams::default(), seed),
        3 => gen::grid2d(5 + rng.below_usize(40), 5 + rng.below_usize(40)),
        _ => gen::suite::circuit_like(500 + rng.below_usize(3000), 5.0, seed),
    };
    let threads = 1 + rng.below_usize(8);
    let src = (rng.below_usize(g.num_vertices())) as u32;
    let reference = serial_bfs(&g, src);
    let opts = BfsOptions {
        threads,
        segment: if rng.chance(0.3) {
            SegmentPolicy::Fixed(1 + rng.below_usize(64))
        } else {
            SegmentPolicy::default()
        },
        pools: 1 + rng.below_usize(threads),
        hub_threshold: rng.chance(0.5).then(|| rng.below_usize(256)),
        dedup: if rng.chance(0.3) { DedupMode::OwnerArray } else { DedupMode::None },
        phase2_steal: rng.chance(0.3),
        record_parents: rng.chance(0.3),
        seed,
        ..BfsOptions::default()
    };
    let runner = match runner_cache.iter().position(|(t, _)| *t == threads) {
        Some(i) => &runner_cache[i].1,
        None => {
            runner_cache.push((threads, obfs::core::BfsRunner::new(threads)));
            &runner_cache.last().unwrap().1
        }
    };
    for algo in Algorithm::ALL {
        let r = runner.run(algo, &g, src, &opts);
        assert_eq!(
            r.levels, reference.levels,
            "{algo} diverged (seed={seed}, threads={threads}, src={src}, opts={opts:?})"
        );
        if opts.record_parents {
            obfs::core::validate::check_self_consistent(&g, src, &r)
                .unwrap_or_else(|e| panic!("{algo} bad tree (seed={seed}): {e}"));
        }
    }
}

/// Fast slice that always runs: keeps the soak harness itself tested.
#[test]
fn soak_smoke() {
    let mut cache = Vec::new();
    for seed in 0..3 {
        round(seed, &mut cache);
    }
}

/// The real soak: hundreds of randomized rounds (300 by default;
/// override with `OBFS_SOAK_ROUNDS`, which the scheduled CI job uses).
#[test]
#[ignore = "long-running; use cargo test --release --test soak -- --ignored"]
fn soak_full() {
    let rounds: u64 = std::env::var("OBFS_SOAK_ROUNDS")
        .ok()
        .map(|v| v.parse().expect("OBFS_SOAK_ROUNDS must be an integer"))
        .unwrap_or(300);
    let mut cache = Vec::new();
    for seed in 0..rounds {
        round(seed, &mut cache);
        if seed % 50 == 0 {
            eprintln!("soak round {seed}/{rounds}");
        }
    }
}
