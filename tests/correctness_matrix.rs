//! The correctness matrix: every algorithm (ours + both baselines) ×
//! graph family × thread count must produce exactly the serial BFS level
//! assignment. This is the load-bearing test for the paper's central
//! claim that optimistic (racy) queue handling never corrupts the result.

use obfs::prelude::*;
use obfs_baselines::hong::{hong_bfs, HongVariant};
use obfs_baselines::pbfs::pbfs;
use obfs_core::serial::serial_bfs;

fn families() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("path", gen::path(500)),
        ("cycle", gen::cycle(333)),
        ("star", gen::star(400)),
        ("binary-tree", gen::binary_tree(1023)),
        ("complete", gen::complete(64)),
        ("erdos-renyi", gen::erdos_renyi(1000, 8000, 11)),
        ("barabasi-albert", gen::barabasi_albert(900, 3, 5)),
        ("grid2d", gen::grid2d(30, 33)),
        ("torus3d", gen::torus3d(9, 9, 9)),
        ("rmat", gen::rmat(10, 8, gen::RmatParams::default(), 3)),
        (
            "disconnected",
            CsrGraph::from_edges(300, &[(0, 1), (1, 2), (2, 0), (100, 101), (200, 201)]),
        ),
    ]
}

#[test]
fn all_our_algorithms_match_serial_everywhere() {
    let parallel: Vec<Algorithm> =
        Algorithm::ALL.into_iter().filter(|a| *a != Algorithm::Serial).collect();
    for (name, g) in families() {
        let src = (0..g.num_vertices() as u32).find(|&v| g.degree(v) > 0).unwrap_or(0);
        let reference = serial_bfs(&g, src);
        for &threads in &[1usize, 2, 4, 7] {
            let opts = BfsOptions { threads, ..BfsOptions::default() };
            for &algo in &parallel {
                let r = run_bfs(algo, &g, src, &opts);
                assert_eq!(
                    r.levels, reference.levels,
                    "{algo} wrong on {name} with {threads} threads"
                );
            }
        }
    }
}

#[test]
fn baselines_match_serial_everywhere() {
    for (name, g) in families() {
        let src = (0..g.num_vertices() as u32).find(|&v| g.degree(v) > 0).unwrap_or(0);
        let reference = serial_bfs(&g, src);
        for &threads in &[1usize, 4] {
            let r = pbfs(&g, src, threads);
            assert_eq!(r.levels, reference.levels, "pbfs wrong on {name} (p={threads})");
            for v in HongVariant::ALL {
                let r = hong_bfs(v, &g, src, threads);
                assert_eq!(r.levels, reference.levels, "{v} wrong on {name} (p={threads})");
            }
        }
    }
}

#[test]
fn all_algorithms_from_many_sources() {
    let g = gen::erdos_renyi(800, 5600, 17);
    let opts = BfsOptions { threads: 4, ..BfsOptions::default() };
    for src in [0u32, 7, 99, 400, 799] {
        let reference = serial_bfs(&g, src);
        for algo in Algorithm::ALL {
            let r = run_bfs(algo, &g, src, &opts);
            assert_eq!(r.levels, reference.levels, "{algo} wrong from source {src}");
        }
    }
}

#[test]
fn option_grid_does_not_break_correctness() {
    let g = gen::barabasi_albert(700, 3, 23);
    // Rotate the source through the grid instead of pinning vertex 0:
    // option bugs that only bite from a hub, a leaf, or the last vertex
    // would all pass a src=0-only sweep.
    let sources = [0u32, 3, 377, 699];
    let references: Vec<_> = sources.iter().map(|&s| serial_bfs(&g, s)).collect();
    let segments = [
        SegmentPolicy::Fixed(1),
        SegmentPolicy::Fixed(64),
        SegmentPolicy::Adaptive { div: 2, max: 4096 },
        SegmentPolicy::Adaptive { div: 16, max: 8 },
    ];
    let dedups = [DedupMode::None, DedupMode::OwnerArray];
    let mut combo = 0usize;
    for segment in segments {
        for dedup in dedups {
            for phase2_steal in [false, true] {
                let src = sources[combo % sources.len()];
                let reference = &references[combo % sources.len()];
                combo += 1;
                let opts = BfsOptions {
                    threads: 4,
                    segment,
                    dedup,
                    phase2_steal,
                    hub_threshold: Some(8),
                    record_parents: true,
                    ..BfsOptions::default()
                };
                for algo in [Algorithm::Bfscl, Algorithm::Bfsdl, Algorithm::Bfswl, Algorithm::Bfswsl]
                {
                    let r = run_bfs(algo, &g, src, &opts);
                    assert_eq!(
                        r.levels, reference.levels,
                        "{algo} wrong from {src} with {segment:?}/{dedup:?}/p2steal={phase2_steal}"
                    );
                    obfs::core::validate::check_self_consistent(&g, src, &r)
                        .unwrap_or_else(|e| panic!("{algo}: invalid tree: {e}"));
                }
            }
        }
    }
}

/// Sources inside secondary components and isolated vertices: the
/// degree>0 source pick used elsewhere always lands in the first
/// component, so a traversal that "accidentally" bleeds across
/// components (or mishandles an immediately-empty frontier) would never
/// be caught there. Every algorithm must reproduce serial levels —
/// reaching exactly the source's own component — from each such source.
#[test]
fn sources_in_secondary_components_match_serial() {
    let g = CsrGraph::from_edges(
        300,
        &[(0, 1), (1, 2), (2, 0), (100, 101), (101, 102), (200, 201)],
    );
    // Component reps (100, 200), interior (101), and isolated (50, 299).
    for src in [100u32, 101, 200, 50, 299] {
        let reference = serial_bfs(&g, src);
        let reached = reference.reached();
        for &threads in &[1usize, 4] {
            let opts = BfsOptions { threads, record_parents: true, ..BfsOptions::default() };
            for algo in Algorithm::ALL {
                let r = run_bfs(algo, &g, src, &opts);
                assert_eq!(
                    r.levels, reference.levels,
                    "{algo} wrong from secondary-component source {src} (p={threads})"
                );
                assert_eq!(r.reached(), reached, "{algo} bled across components from {src}");
                obfs::core::validate::check_self_consistent(&g, src, &r)
                    .unwrap_or_else(|e| panic!("{algo} from {src}: invalid tree: {e}"));
            }
        }
    }
}

/// Deterministic option matrix: every parallel algorithm × thread count
/// {1, 2, 4, 8} × watchdog {off, armed-generous} × segment policy, all
/// with fixed seeds so a failure reproduces bit-for-bit from the assert
/// message. Runners are cached per thread count so the sweep reuses
/// pools instead of respawning workers for each of the ~500 runs.
#[test]
fn deterministic_matrix_sweep() {
    let graphs = [
        ("erdos-renyi", gen::erdos_renyi(600, 4200, 29)),
        ("grid2d", gen::grid2d(24, 25)),
    ];
    let parallel: Vec<Algorithm> =
        Algorithm::ALL.into_iter().filter(|a| *a != Algorithm::Serial).collect();
    let segments = [SegmentPolicy::Fixed(8), SegmentPolicy::default()];
    let mut runners: Vec<(usize, obfs::core::BfsRunner)> = Vec::new();
    for (name, g) in &graphs {
        let src = (0..g.num_vertices() as u32).find(|&v| g.degree(v) > 0).unwrap();
        let reference = serial_bfs(g, src);
        for &threads in &[1usize, 2, 4, 8] {
            let runner = match runners.iter().position(|(t, _)| *t == threads) {
                Some(i) => &runners[i].1,
                None => {
                    runners.push((threads, obfs::core::BfsRunner::new(threads)));
                    &runners.last().unwrap().1
                }
            };
            for watchdog_on in [false, true] {
                for segment in segments {
                    let opts = BfsOptions {
                        threads,
                        segment,
                        // A generous deadline arms the watchdog machinery
                        // (the per-level deadline checks run) without
                        // actually degrading any level.
                        watchdog: watchdog_on.then(|| {
                            WatchdogPolicy::deadline(std::time::Duration::from_secs(60))
                        }),
                        record_parents: true,
                        seed: 0xC0FFEE ^ (threads as u64) << 8,
                        ..BfsOptions::default()
                    };
                    for &algo in &parallel {
                        let r = runner.run(algo, g, src, &opts);
                        assert_eq!(
                            r.levels, reference.levels,
                            "{algo} wrong on {name}: threads={threads} \
                             watchdog={watchdog_on} segment={segment:?}"
                        );
                        obfs::core::validate::check_self_consistent(g, src, &r)
                            .unwrap_or_else(|e| {
                                panic!(
                                    "{algo} invalid tree on {name}: threads={threads} \
                                     watchdog={watchdog_on} segment={segment:?}: {e}"
                                )
                            });
                        assert_eq!(
                            r.stats.degraded_levels, 0,
                            "{algo} on {name}: generous watchdog must never trip"
                        );
                    }
                }
            }
        }
    }
}

/// Hybrid-aware matrix: hybrid {off, heuristic, forced-top-down,
/// forced-bottom-up} × threads {1, 2, 4, 8} × every parallel algorithm,
/// with exact level *and* parent agreement against serial BFS. Forced
/// overrides pin every level into one kernel so both code paths get the
/// full graph-family sweep, not just the levels the heuristic happens to
/// pick.
#[test]
fn hybrid_matrix_matches_serial_everywhere() {
    let graphs = [
        ("erdos-renyi", gen::erdos_renyi(700, 5600, 19)),
        ("barabasi-albert", gen::barabasi_albert(800, 3, 37)),
        ("complete", gen::complete(96)),
        (
            "disconnected",
            CsrGraph::from_edges(300, &[(0, 1), (1, 2), (2, 0), (100, 101), (200, 201)]),
        ),
    ];
    let parallel: Vec<Algorithm> =
        Algorithm::ALL.into_iter().filter(|a| *a != Algorithm::Serial).collect();
    let modes: [(&str, Option<HybridPolicy>); 4] = [
        ("off", None),
        ("heuristic", Some(HybridPolicy::default())),
        ("forced-td", Some(HybridPolicy::forced(ForcedDirection::AlwaysTopDown))),
        ("forced-bu", Some(HybridPolicy::forced(ForcedDirection::AlwaysBottomUp))),
    ];
    let mut runners: Vec<(usize, obfs::core::BfsRunner)> = Vec::new();
    for (name, g) in &graphs {
        let src = (0..g.num_vertices() as u32).find(|&v| g.degree(v) > 0).unwrap();
        let reference = serial_bfs(g, src);
        let transpose = g.transpose();
        for &threads in &[1usize, 2, 4, 8] {
            let runner = match runners.iter().position(|(t, _)| *t == threads) {
                Some(i) => &runners[i].1,
                None => {
                    runners.push((threads, obfs::core::BfsRunner::new(threads)));
                    &runners.last().unwrap().1
                }
            };
            for (mode, hybrid) in &modes {
                let opts = BfsOptions {
                    threads,
                    hybrid: *hybrid,
                    record_parents: true,
                    seed: 0xC0FFEE ^ (threads as u64) << 8,
                    ..BfsOptions::default()
                };
                for &algo in &parallel {
                    let r = runner.run_with_transpose(algo, g, Some(&transpose), src, &opts);
                    assert_eq!(
                        r.levels, reference.levels,
                        "{algo} wrong on {name}: threads={threads} hybrid={mode}"
                    );
                    obfs::core::validate::check_self_consistent(g, src, &r).unwrap_or_else(
                        |e| {
                            panic!(
                                "{algo} invalid tree on {name}: threads={threads} \
                                 hybrid={mode}: {e}"
                            )
                        },
                    );
                    if hybrid.is_some() {
                        assert_eq!(
                            r.stats.directions.len() as u32,
                            r.stats.levels,
                            "{algo} on {name}: direction per level (hybrid={mode})"
                        );
                    } else {
                        assert!(r.stats.directions.is_empty(), "{algo} on {name}");
                    }
                }
            }
        }
    }
}

/// Compaction-aware matrix: compaction {off, auto-density, forced-on} ×
/// threads {1, 2, 4, 8} × every parallel algorithm, with exact level and
/// parent-tree agreement against serial BFS. Forced-on compacts *every*
/// non-empty top-down level, so the prefix-sum materialize/consume path
/// gets the full graph-family sweep rather than only the dense levels
/// the density rule happens to pick; the forced-on rows must also report
/// at least one compacted level (and a dispatched kernel backend) on any
/// multi-level graph, proving the mode was actually exercised.
#[test]
fn compaction_matrix_matches_serial_everywhere() {
    let graphs = [
        ("erdos-renyi", gen::erdos_renyi(700, 5600, 23)),
        ("barabasi-albert", gen::barabasi_albert(800, 3, 41)),
        ("grid2d", gen::grid2d(24, 25)),
        (
            "disconnected",
            CsrGraph::from_edges(300, &[(0, 1), (1, 2), (2, 0), (100, 101), (200, 201)]),
        ),
    ];
    let parallel: Vec<Algorithm> =
        Algorithm::ALL.into_iter().filter(|a| *a != Algorithm::Serial).collect();
    let modes: [(&str, Option<CompactionPolicy>); 3] = [
        ("off", None),
        ("auto", Some(CompactionPolicy::default())),
        ("forced-on", Some(CompactionPolicy::forced_on())),
    ];
    let mut runners: Vec<(usize, obfs::core::BfsRunner)> = Vec::new();
    for (name, g) in &graphs {
        let src = (0..g.num_vertices() as u32).find(|&v| g.degree(v) > 0).unwrap();
        let reference = serial_bfs(g, src);
        let multi_level = reference.levels.iter().any(|&l| l != u32::MAX && l > 0);
        for &threads in &[1usize, 2, 4, 8] {
            let runner = match runners.iter().position(|(t, _)| *t == threads) {
                Some(i) => &runners[i].1,
                None => {
                    runners.push((threads, obfs::core::BfsRunner::new(threads)));
                    &runners.last().unwrap().1
                }
            };
            for (mode, compaction) in &modes {
                let opts = BfsOptions {
                    threads,
                    compaction: *compaction,
                    record_parents: true,
                    seed: 0xC0FFEE ^ (threads as u64) << 8,
                    ..BfsOptions::default()
                };
                for &algo in &parallel {
                    let r = runner.run(algo, g, src, &opts);
                    assert_eq!(
                        r.levels, reference.levels,
                        "{algo} wrong on {name}: threads={threads} compaction={mode}"
                    );
                    obfs::core::validate::check_self_consistent(g, src, &r).unwrap_or_else(
                        |e| {
                            panic!(
                                "{algo} invalid tree on {name}: threads={threads} \
                                 compaction={mode}: {e}"
                            )
                        },
                    );
                    match *mode {
                        "off" => assert_eq!(
                            r.stats.compacted_levels, 0,
                            "{algo} on {name}: compacted with compaction disabled"
                        ),
                        "forced-on" if multi_level => {
                            assert!(
                                r.stats.compacted_levels > 0,
                                "{algo} on {name}: forced-on never compacted \
                                 (threads={threads})"
                            );
                            assert!(
                                r.stats.kernel_backend.is_some(),
                                "{algo} on {name}: compacted run lost its backend"
                            );
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}

#[test]
fn single_vertex_and_isolated_source() {
    let single = CsrGraph::from_edges(1, &[]);
    let isolated = CsrGraph::from_edges(5, &[(1, 2), (2, 3)]);
    let opts = BfsOptions { threads: 3, ..BfsOptions::default() };
    for algo in Algorithm::ALL {
        let r = run_bfs(algo, &single, 0, &opts);
        assert_eq!(r.levels, vec![0], "{algo} on the 1-vertex graph");
        // Source 0 has no out-edges at all.
        let r = run_bfs(algo, &isolated, 0, &opts);
        assert_eq!(r.reached(), 1, "{algo} from an isolated source");
        assert_eq!(r.levels[0], 0);
    }
}

#[test]
fn self_loops_and_parallel_edge_graphs() {
    // Built without dedup: parallel edges and self-loops survive.
    let mut b = GraphBuilder::new(6).dedup(false).allow_self_loops(true);
    b.extend([(0, 0), (0, 1), (0, 1), (1, 2), (2, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
    let g = b.build();
    let reference = serial_bfs(&g, 0);
    let opts = BfsOptions { threads: 4, ..BfsOptions::default() };
    for algo in Algorithm::ALL {
        let r = run_bfs(algo, &g, 0, &opts);
        assert_eq!(r.levels, reference.levels, "{algo} with self-loops/multi-edges");
    }
}
