//! Correctness of the bit-level-faithful volatile racy backend.
//!
//! Compiled only with `--features volatile-racy`; the whole file is a
//! no-op otherwise. Run with:
//!
//! ```sh
//! cargo test --features volatile-racy --test volatile_backend
//! ```
#![cfg(feature = "volatile-racy")]

use obfs::prelude::*;
use obfs_core::serial::serial_bfs;

#[test]
fn all_algorithms_correct_under_volatile_backend() {
    let graphs = [
        gen::erdos_renyi(800, 6000, 1),
        gen::barabasi_albert(600, 3, 2),
        gen::path(500),
        gen::star(400),
    ];
    for g in &graphs {
        let src = (0..g.num_vertices() as u32).find(|&v| g.degree(v) > 0).unwrap();
        let reference = serial_bfs(g, src);
        for threads in [1usize, 4, 8] {
            let opts = BfsOptions { threads, ..BfsOptions::default() };
            for algo in Algorithm::ALL {
                let r = run_bfs(algo, g, src, &opts);
                assert_eq!(
                    r.levels, reference.levels,
                    "{algo} wrong under volatile backend (p={threads})"
                );
            }
        }
    }
}

#[test]
fn volatile_soak_slice() {
    // A short randomized slice mirroring tests/soak.rs under the
    // volatile cells.
    for seed in 0..5u64 {
        let g = gen::rmat(10, 6, gen::RmatParams::default(), seed);
        let src = (0..g.num_vertices() as u32).find(|&v| g.degree(v) > 0).unwrap();
        let reference = serial_bfs(&g, src);
        let opts = BfsOptions {
            threads: 6,
            segment: SegmentPolicy::Fixed(2),
            seed,
            ..BfsOptions::default()
        };
        for algo in [Algorithm::Bfscl, Algorithm::Bfsdl, Algorithm::Bfswl, Algorithm::Bfswsl] {
            let r = run_bfs(algo, &g, src, &opts);
            assert_eq!(r.levels, reference.levels, "{algo} seed {seed}");
        }
    }
}
