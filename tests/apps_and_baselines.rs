//! Integration of the application layer (`obfs-apps`) and all baselines
//! on the paper-graph stand-ins: the "downstream user" path through the
//! whole stack.

use obfs::apps;
use obfs::baselines::beamer::beamer_bfs;
use obfs::prelude::*;
use obfs_core::serial::serial_bfs;
use obfs_core::UNVISITED;

#[test]
fn beamer_matches_serial_on_paper_suite() {
    for kind in obfs_graph::gen::suite::ALL {
        let g = kind.generate(2048, 3);
        let t = g.transpose();
        let src = (0..g.num_vertices() as u32).find(|&v| g.degree(v) > 0).unwrap();
        let r = beamer_bfs(&g, &t, src, 4);
        let ser = serial_bfs(&g, src);
        assert_eq!(r.bfs.levels, ser.levels, "beamer wrong on {}", kind.name());
        assert_eq!(r.directions.len() as u32, r.bfs.stats.levels, "{}", kind.name());
    }
}

#[test]
fn shortest_paths_agree_across_algorithms() {
    let g = gen::suite::cage_like(8000, 10.0, 5);
    let opts = BfsOptions { threads: 4, ..BfsOptions::default() };
    let dst = (g.num_vertices() - 1) as u32;
    let lengths: Vec<Option<usize>> = [Algorithm::Serial, Algorithm::Bfscl, Algorithm::Bfswsl]
        .into_iter()
        .map(|a| apps::shortest_path(&g, 0, dst, a, &opts).map(|p| p.hops()))
        .collect();
    assert_eq!(lengths[0], lengths[1]);
    assert_eq!(lengths[0], lengths[2]);
    if let Some(h) = lengths[0] {
        assert!(h > 0);
    }
}

#[test]
fn components_on_multi_island_suite_graph() {
    // Two disjoint wikipedia-like blobs.
    let blob = gen::suite::scale_free_like(3000, 8.0, 2.3, 4);
    let n = blob.num_vertices();
    let mut b = GraphBuilder::new(2 * n);
    b.extend(blob.edges());
    b.extend(blob.edges().map(|(u, v)| (u + n as u32, v + n as u32)));
    let g = b.build();
    let opts = BfsOptions { threads: 4, ..BfsOptions::default() };
    let c = apps::connected_components(&g, Algorithm::Bfswl, &opts);
    // Scale-free blobs may have tiny satellite pieces, but no component
    // may span the two halves. One row suffices: labels are
    // per-component constants.
    for w in n..2 * n {
        if c.same_component(0, w as u32) {
            panic!("component spans the disjoint halves (0, {w})");
        }
    }
    assert!(c.count >= 2);
}

#[test]
fn bipartite_grid_vs_odd_wikipedia() {
    let grid = gen::grid2d(40, 41);
    let opts = BfsOptions { threads: 3, ..BfsOptions::default() };
    assert!(matches!(
        apps::bipartition(&grid, Algorithm::Bfscl, &opts),
        apps::Bipartition::Bipartite { .. }
    ));
    // Scale-free graphs virtually always contain triangles.
    let wiki = gen::suite::scale_free_like(4000, 10.0, 2.3, 9);
    let mut sym = GraphBuilder::new(wiki.num_vertices()).symmetrize(true);
    sym.extend(wiki.edges());
    let wiki = sym.build();
    assert!(matches!(
        apps::bipartition(&wiki, Algorithm::Bfscl, &opts),
        apps::Bipartition::OddCycle { .. }
    ));
}

#[test]
fn clustering_covers_suite_graph() {
    let g = gen::suite::kkt_like(5000, 4.0, 2);
    let c = apps::bfs_ball_clustering(&g, 3);
    assert_eq!(c.cluster.len(), g.num_vertices());
    assert_eq!(c.sizes().iter().sum::<usize>(), g.num_vertices());
    assert!(c.count() >= 1);
}

#[test]
fn betweenness_hub_detection_on_scale_free() {
    let g = gen::barabasi_albert(2000, 3, 11);
    let bc = apps::betweenness_centrality(&g, 32, 5);
    // The highest-BC vertex must be among the highest-degree vertices.
    let argmax_bc = bc
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0 as u32;
    let mut by_degree: Vec<u32> = (0..2000).collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    assert!(
        by_degree[..20].contains(&argmax_bc),
        "top-BC vertex {argmax_bc} (deg {}) not among top-20 degrees",
        g.degree(argmax_bc)
    );
}

#[test]
fn maxflow_on_layered_random_network() {
    // Source -> layer A -> layer B -> sink with unit capacities: max flow
    // is bounded by the min edge cut; verify against a hand-computable
    // topology.
    let mut net = apps::FlowNetwork::new(10);
    let (s, t) = (0u32, 9u32);
    for a in 1..=4u32 {
        net.add_edge(s, a, 1);
    }
    for a in 1..=4u32 {
        for b in 5..=8u32 {
            net.add_edge(a, b, 1);
        }
    }
    for b in 5..=8u32 {
        net.add_edge(b, t, 1);
    }
    assert_eq!(apps::max_flow(&mut net, s, t), 4);
}

#[test]
fn multi_source_distance_field_on_mesh() {
    // Multi-source BFS (virtual super-source) on a torus: the distance
    // field from k seeds equals the pointwise min of k single-source
    // fields.
    let g = gen::torus3d(8, 8, 8);
    let opts = BfsOptions { threads: 4, ..BfsOptions::default() };
    let seeds = [0u32, 100, 400];
    let field = apps::multi_source_distances(&g, &seeds, Algorithm::Bfswsl, &opts);
    for (v, &d) in field.iter().enumerate() {
        let expect = seeds
            .iter()
            .map(|&s| serial_bfs(&g, s).levels[v])
            .min()
            .unwrap();
        assert_eq!(d, expect, "vertex {v}");
        assert_ne!(d, UNVISITED, "torus is connected");
    }
}
